//! Per-file fact extraction from the token stream.
//!
//! The extractor walks a file's code tokens once and records the raw material
//! the rules in [`crate::rules`] check: mutex declarations and acquisition
//! sequences (with heuristic guard-lifetime tracking), thread-spawn sites,
//! float compound-assignments inside `launch*` closures, wall-clock reads,
//! `unsafe` sites, `static mut` / `process::exit` uses, and `unwrap`/`expect`
//! call sites.  Everything is line-anchored so diagnostics and suppressions
//! line up with the source.
//!
//! # Precision model
//!
//! This is a lexical analyzer, not a type checker.  Guard lifetimes are
//! approximated: a `let`-bound guard is held until an explicit `drop(guard)`,
//! the end of its block, or the end of the function; a guard that is never
//! bound (`lock(&x).field`, `drop(lock(&x))`) is held to the end of its
//! statement.  Condvar waits (`cv.wait(guard)`) keep the guard held, which
//! matches both `std` and the vendored `parking_lot`.  The approximation errs
//! toward *longer* holds, so lock-order edges are a superset of the real
//! nesting — sound for deadlock detection, with `rules.toml` absorbing any
//! intentional exceptions.

use crate::lexer::{Lexed, Token, TokenKind};

/// A mutex-typed field declaration (`field: Mutex<Inner>` or
/// `field: Arc<Mutex<Inner>>`).
#[derive(Debug, Clone)]
pub struct MutexDecl {
    /// Field name, the analyzer's lock identity within a file.
    pub field: String,
    /// First identifier of the guarded type (`QueueState`, `f64`, ...), used
    /// to resolve `MutexGuard<'_, Inner>` function parameters back to fields.
    pub inner_type: String,
    /// 1-based declaration line.
    pub line: u32,
}

/// One lock-acquired-while-holding-another observation.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Field name of the lock already held.
    pub held: String,
    /// Field name of the lock being acquired under it.
    pub acquired: String,
    /// Line of the inner acquisition.
    pub line: u32,
}

/// A function call made while at least one lock is held (fuel for the
/// one-level interprocedural propagation in rule R1).
#[derive(Debug, Clone)]
pub struct HeldCall {
    /// Fields of the locks held at the call site.
    pub held: Vec<String>,
    /// Callee name as written (`notify_waiters`, `arm_deadline`, ...).
    pub callee: String,
    /// Call-site line.
    pub line: u32,
}

/// Per-function lock facts.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    /// Function name as written.
    pub name: String,
    /// Fields of every lock acquired directly inside the body.
    pub locks: Vec<String>,
    /// Lock-order edges observed inside the body.
    pub edges: Vec<LockEdge>,
    /// Calls made while holding at least one lock.
    pub held_calls: Vec<HeldCall>,
    /// Every call made anywhere in the body (fuel for the transitive
    /// lock-set computation in rule R1).
    pub calls: Vec<String>,
}

/// What produced a thread-spawn site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpawnKind {
    /// `thread::spawn(...)` / `std::thread::spawn(...)`.
    Direct,
    /// Any `.spawn(...)` method call: `Builder::new().spawn`, `scope.spawn`.
    Method,
}

/// A thread-spawn site.
#[derive(Debug, Clone)]
pub struct SpawnSite {
    /// 1-based line.
    pub line: u32,
    /// How the spawn was written.
    pub kind: SpawnKind,
    /// Whether the site is inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
}

/// A wall-clock read (`Instant::now` or any `SystemTime` use).
#[derive(Debug, Clone)]
pub struct TimeSite {
    /// 1-based line.
    pub line: u32,
    /// The construct observed (`Instant::now` or `SystemTime`).
    pub what: &'static str,
    /// Whether the site is inside test code.
    pub in_test: bool,
}

/// The syntactic form an `unsafe` keyword introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeForm {
    /// `unsafe { ... }`.
    Block,
    /// `unsafe impl ... {}`.
    Impl,
    /// `unsafe fn name(...)` definition.
    FnDef,
    /// `unsafe trait ...`.
    Trait,
}

/// An `unsafe` site subject to rule R5.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// Which form of `unsafe` this is.
    pub form: UnsafeForm,
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct FileFacts {
    /// Mutex-typed field declarations.
    pub mutex_decls: Vec<MutexDecl>,
    /// Per-function lock facts.
    pub functions: Vec<FnFacts>,
    /// Thread-spawn sites.
    pub spawns: Vec<SpawnSite>,
    /// Compound float assignments (`+=`/`-=`) inside `launch*` argument spans.
    pub launch_accums: Vec<(u32, String)>,
    /// Wall-clock reads.
    pub time_sites: Vec<TimeSite>,
    /// `unsafe` sites.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// `static mut` declarations.
    pub static_muts: Vec<u32>,
    /// `process::exit` calls.
    pub process_exits: Vec<u32>,
    /// `.unwrap()` / `.expect(` sites outside test code.
    pub unwrap_sites: Vec<u32>,
}

/// Type names that never identify a unique lock (generic containers); their
/// `MutexGuard` parameters are left unresolved.
const GENERIC_TYPES: &[&str] = &["Option", "Vec", "VecDeque", "BTreeMap", "HashMap", "Box"];

/// Extract all facts from one lexed file.
pub fn extract(lexed: &Lexed) -> FileFacts {
    let tokens = &lexed.tokens;
    let mut facts = FileFacts::default();
    let in_test = test_spans(tokens);

    scan_decls(tokens, &mut facts);
    scan_simple_sites(tokens, &in_test, &mut facts);
    scan_launch_accums(tokens, &mut facts);

    for (name, sig, body) in function_spans(tokens) {
        if name == "lock" {
            // The one-line poisoning helper every crate carries; its body is
            // `mutex.lock().unwrap_or_else(...)` on a generic parameter, which
            // is not an acquisition of any *particular* lock.
            continue;
        }
        let guard_params = signature_guards(&tokens[sig.clone()]);
        facts
            .functions
            .push(scan_function(&tokens[body], name, guard_params));
    }
    facts
}

/// Identify `#[cfg(test)]` / `#[test]` token spans; returns one flag per token.
fn test_spans(tokens: &[Token]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if is_punct(tokens, i, "#") && is_punct(tokens, i + 1, "[") {
            // Find the matching `]`, checking for a `test` marker inside.
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut is_test_attr = false;
            while j < tokens.len() {
                match &tokens[j].kind {
                    TokenKind::Punct(p) if p == "[" => depth += 1,
                    TokenKind::Punct(p) if p == "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenKind::Ident(id) if id == "test" => is_test_attr = true,
                    _ => {}
                }
                j += 1;
            }
            if is_test_attr {
                // Mark everything through the end of the annotated item's body.
                if let Some(open) = (j..tokens.len()).find(|&k| is_punct(tokens, k, "{")) {
                    let close = matching_brace(tokens, open);
                    for flag in flags.iter_mut().take(close + 1).skip(i) {
                        *flag = true;
                    }
                    // Continue scanning *inside* as well (nested attributes are
                    // already marked), resume after the attribute itself.
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    flags
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, token) in tokens.iter().enumerate().skip(open) {
        match &token.kind {
            TokenKind::Punct(p) if p == "{" => depth += 1,
            TokenKind::Punct(p) if p == "}" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    tokens.len() - 1
}

fn is_punct(tokens: &[Token], i: usize, p: &str) -> bool {
    matches!(tokens.get(i), Some(Token { kind: TokenKind::Punct(q), .. }) if q == p)
}

fn is_ident(tokens: &[Token], i: usize, id: &str) -> bool {
    matches!(tokens.get(i), Some(Token { kind: TokenKind::Ident(q), .. }) if q == id)
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(id)) => Some(id),
        _ => None,
    }
}

/// Record `field: Mutex<Inner>` / `field: Arc<Mutex<Inner>>` declarations.
fn scan_decls(tokens: &[Token], facts: &mut FileFacts) {
    for i in 0..tokens.len() {
        if !is_ident(tokens, i, "Mutex") || !is_punct(tokens, i + 1, "<") {
            continue;
        }
        // `Mutex::new` etc. are uses, not declarations; require `: Mutex<` or
        // `: Arc<Mutex<` with a field identifier before the colon.
        let colon = if is_punct(tokens, i.wrapping_sub(1), ":") {
            i - 1
        } else if is_punct(tokens, i.wrapping_sub(1), "<")
            && is_ident(tokens, i.wrapping_sub(2), "Arc")
            && is_punct(tokens, i.wrapping_sub(3), ":")
        {
            i - 3
        } else {
            continue;
        };
        let Some(field) = colon.checked_sub(1).and_then(|k| ident_at(tokens, k)) else {
            continue;
        };
        let Some(inner) = ident_at(tokens, i + 2) else {
            continue;
        };
        facts.mutex_decls.push(MutexDecl {
            field: field.to_string(),
            inner_type: inner.to_string(),
            line: tokens[i].line,
        });
    }
}

/// Record spawn / time / unsafe / static-mut / exit / unwrap sites.
fn scan_simple_sites(tokens: &[Token], in_test: &[bool], facts: &mut FileFacts) {
    for i in 0..tokens.len() {
        let line = tokens[i].line;
        match &tokens[i].kind {
            TokenKind::Ident(id) => match id.as_str() {
                "thread" if is_punct(tokens, i + 1, "::") && is_ident(tokens, i + 2, "spawn") => {
                    facts.spawns.push(SpawnSite {
                        line,
                        kind: SpawnKind::Direct,
                        in_test: in_test[i],
                    });
                }
                "Instant" if is_punct(tokens, i + 1, "::") && is_ident(tokens, i + 2, "now") => {
                    facts.time_sites.push(TimeSite {
                        line,
                        what: "Instant::now",
                        in_test: in_test[i],
                    });
                }
                "SystemTime" => {
                    facts.time_sites.push(TimeSite {
                        line,
                        what: "SystemTime",
                        in_test: in_test[i],
                    });
                }
                "unsafe" => {
                    let form = if is_punct(tokens, i + 1, "{") {
                        Some(UnsafeForm::Block)
                    } else if is_ident(tokens, i + 1, "impl") {
                        Some(UnsafeForm::Impl)
                    } else if is_ident(tokens, i + 1, "trait") {
                        Some(UnsafeForm::Trait)
                    } else if is_ident(tokens, i + 1, "fn") {
                        // `unsafe fn name(...)` is a definition; `unsafe
                        // fn(...)` in type position has no name and needs no
                        // SAFETY narrative of its own.
                        ident_at(tokens, i + 2).map(|_| UnsafeForm::FnDef)
                    } else {
                        None
                    };
                    if let Some(form) = form {
                        facts.unsafe_sites.push(UnsafeSite { line, form });
                    }
                }
                "static" if is_ident(tokens, i + 1, "mut") => facts.static_muts.push(line),
                "process" if is_punct(tokens, i + 1, "::") && is_ident(tokens, i + 2, "exit") => {
                    facts.process_exits.push(line);
                }
                _ => {}
            },
            TokenKind::Punct(p) if p == "." => {
                if is_ident(tokens, i + 1, "spawn") && is_punct(tokens, i + 2, "(") {
                    facts.spawns.push(SpawnSite {
                        line: tokens[i + 1].line,
                        kind: SpawnKind::Method,
                        in_test: in_test[i],
                    });
                }
                if (is_ident(tokens, i + 1, "unwrap") || is_ident(tokens, i + 1, "expect"))
                    && is_punct(tokens, i + 2, "(")
                    && !in_test[i]
                {
                    facts.unwrap_sites.push(tokens[i + 1].line);
                }
            }
            _ => {}
        }
    }
}

/// Flag `+=` / `-=` on *captured* variables inside `.launch*(...)` spans.
///
/// A closure-local accumulator (`let mut sum = 0.0;` inside the closure,
/// returned as the block's partial and combined in block order on the host)
/// is the blessed deterministic form; accumulating into state captured from
/// outside the closure is the order-dependent pattern rule R3 forbids.
fn scan_launch_accums(tokens: &[Token], facts: &mut FileFacts) {
    for i in 0..tokens.len() {
        if !is_punct(tokens, i, ".") {
            continue;
        }
        let Some(name) = ident_at(tokens, i + 1) else {
            continue;
        };
        if !matches!(name, "launch" | "launch_batch") || !is_punct(tokens, i + 2, "(") {
            continue;
        }
        let end = skip_parens(tokens, i + 2);
        let span = &tokens[i + 2..end];
        // Names declared inside the span: `let` bindings and closure params.
        let mut local: Vec<&str> = Vec::new();
        let mut k = 0;
        while k < span.len() {
            if is_ident(span, k, "let") {
                let mut j = k + 1;
                if is_ident(span, j, "mut") {
                    j += 1;
                }
                if let Some(id) = ident_at(span, j) {
                    local.push(id);
                }
            }
            if is_punct(span, k, "|") {
                // Closure parameter list: idents up to the closing `|`.
                let mut j = k + 1;
                while j < span.len() && !is_punct(span, j, "|") {
                    if let Some(id) = ident_at(span, j) {
                        local.push(id);
                    }
                    j += 1;
                }
                k = j;
            }
            k += 1;
        }
        for (k, token) in span.iter().enumerate() {
            let TokenKind::Punct(p) = &token.kind else {
                continue;
            };
            if p != "+=" && p != "-=" {
                continue;
            }
            // Assignment target: the ident just before, or — for an indexed
            // target like `out[i] +=` — the ident before the `[`.
            let target = match k.checked_sub(1) {
                Some(prev) if is_punct(span, prev, "]") => {
                    let mut depth = 0i32;
                    let mut b = prev;
                    loop {
                        match &span[b].kind {
                            TokenKind::Punct(q) if q == "]" => depth += 1,
                            TokenKind::Punct(q) if q == "[" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if b == 0 {
                            break;
                        }
                        b -= 1;
                    }
                    b.checked_sub(1).and_then(|j| ident_at(span, j))
                }
                Some(prev) => ident_at(span, prev),
                None => None,
            };
            if target.is_none_or(|t| !local.contains(&t)) {
                facts.launch_accums.push((token.line, p.clone()));
            }
        }
    }
}

/// Locate every `fn name ... { body }`; yields `(name, signature_span,
/// body_span)` with token-index ranges.
fn function_spans(
    tokens: &[Token],
) -> Vec<(String, std::ops::Range<usize>, std::ops::Range<usize>)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !is_ident(tokens, i, "fn") {
            i += 1;
            continue;
        }
        let Some(name) = ident_at(tokens, i + 1) else {
            i += 1;
            continue;
        };
        // Walk the signature to the body `{`, or to `;` for a bodyless decl.
        let mut paren = 0i32;
        let mut j = i + 2;
        let mut body_open = None;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokenKind::Punct(p) if p == "(" || p == "[" => paren += 1,
                TokenKind::Punct(p) if p == ")" || p == "]" => paren -= 1,
                TokenKind::Punct(p) if p == "{" && paren == 0 => {
                    body_open = Some(j);
                    break;
                }
                TokenKind::Punct(p) if p == ";" && paren == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i = j + 1;
            continue;
        };
        let close = matching_brace(tokens, open);
        out.push((name.to_string(), i + 2..open, open..close + 1));
        // Continue scanning from inside the body so nested fns are found too.
        i = open + 1;
    }
    out
}

/// Parse `name: MutexGuard<'_, Inner>` parameters out of a signature span;
/// the function body starts with those locks already held.
fn signature_guards(sig: &[Token]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for i in 0..sig.len() {
        if !is_ident(sig, i, "MutexGuard") {
            continue;
        }
        // Walk back over `:` (and `mut`) to the parameter name.
        let mut back = i;
        while back > 0 && !is_punct(sig, back, ":") {
            back -= 1;
        }
        let mut name_idx = back.wrapping_sub(1);
        if is_ident(sig, name_idx, "mut") {
            name_idx = name_idx.wrapping_sub(1);
        }
        let Some(param) = ident_at(sig, name_idx) else {
            continue;
        };
        // Forward past `<`, the lifetime, `,` to the inner type.
        let mut k = i + 1;
        let mut inner = None;
        while k < sig.len() && !is_punct(sig, k, ">") {
            if let Some(id) = ident_at(sig, k) {
                inner = Some(id.to_string());
                break;
            }
            k += 1;
        }
        if let Some(inner) = inner {
            if !GENERIC_TYPES.contains(&inner.as_str()) {
                out.push((param.to_string(), inner));
            }
        }
    }
    out
}

/// A lock currently held during the body walk.
struct Held {
    field: String,
    guard: Option<String>,
    depth: i32,
    temp: bool,
}

/// Walk one function body, tracking held locks and recording acquisition
/// edges plus calls made while holding.
fn scan_function(body: &[Token], name: String, guard_params: Vec<(String, String)>) -> FnFacts {
    let mut facts = FnFacts {
        name,
        ..FnFacts::default()
    };
    // Guards received as parameters are held for the whole body; the engine
    // resolves their inner type to a lock field before running R1, so they
    // are carried with a `type:` prefix here.
    let mut held: Vec<Held> = guard_params
        .into_iter()
        .map(|(param, inner)| Held {
            field: format!("type:{inner}"),
            guard: Some(param),
            depth: 0,
            temp: false,
        })
        .collect();
    let mut depth = 0i32;
    let mut i = 0;
    while i < body.len() {
        let line = body[i].line;
        match &body[i].kind {
            TokenKind::Punct(p) if p == "{" => depth += 1,
            TokenKind::Punct(p) if p == "}" => {
                depth -= 1;
                held.retain(|h| h.depth <= depth);
            }
            TokenKind::Punct(p) if p == ";" => {
                held.retain(|h| !(h.temp && h.depth >= depth));
            }
            _ => {}
        }
        // `drop(guard)` releases a named guard.
        if is_ident(body, i, "drop") && is_punct(body, i + 1, "(") {
            if let Some(g) = ident_at(body, i + 2) {
                if is_punct(body, i + 3, ")") {
                    held.retain(|h| h.guard.as_deref() != Some(g));
                }
            }
        }
        if let Some((field, after)) = acquisition_at(body, i) {
            // Skip guard-preserving adapters (`.lock().unwrap()`), then check
            // whether the guard is consumed inside the expression: a further
            // method chain (`lock(&x).observations`) means the guard is a
            // temporary however the statement is bound.
            let mut after = after;
            while is_punct(body, after, ".")
                && matches!(
                    ident_at(body, after + 1),
                    Some("unwrap" | "expect" | "unwrap_or_else")
                )
                && is_punct(body, after + 2, "(")
            {
                after = skip_parens(body, after + 2);
            }
            let chained = is_punct(body, after, ".");
            let guard = if chained { None } else { let_binding(body, i) };
            for h in &held {
                if h.field != field {
                    facts.edges.push(LockEdge {
                        held: h.field.clone(),
                        acquired: field.clone(),
                        line,
                    });
                }
            }
            facts.locks.push(field.clone());
            held.push(Held {
                temp: guard.is_none(),
                field,
                guard,
                depth,
            });
            i = after;
            continue;
        }
        if let Some(callee) = call_at(body, i) {
            if !held.is_empty() {
                facts.held_calls.push(HeldCall {
                    held: held.iter().map(|h| h.field.clone()).collect(),
                    callee: callee.clone(),
                    line,
                });
            }
            facts.calls.push(callee);
        }
        i += 1;
    }
    facts
}

/// Detect a lock acquisition starting at token `i`; returns the lock's field
/// name and the index to resume scanning from.
fn acquisition_at(body: &[Token], i: usize) -> Option<(String, usize)> {
    // Helper style: `lock(&path.to.field)`, not preceded by `.`.
    if is_ident(body, i, "lock")
        && is_punct(body, i + 1, "(")
        && is_punct(body, i + 2, "&")
        && !(i > 0 && is_punct(body, i - 1, "."))
    {
        let mut depth = 0i32;
        let mut last_ident = None;
        let mut k = i + 1;
        while k < body.len() {
            match &body[k].kind {
                TokenKind::Punct(p) if p == "(" => depth += 1,
                TokenKind::Punct(p) if p == ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident(id) => last_ident = Some(id.clone()),
                _ => {}
            }
            k += 1;
        }
        return last_ident.map(|f| (f, k + 1));
    }
    // Method style: `expr.field.lock()`.
    if is_punct(body, i, ".")
        && is_ident(body, i + 1, "lock")
        && is_punct(body, i + 2, "(")
        && is_punct(body, i + 3, ")")
    {
        if let Some(field) = i.checked_sub(1).and_then(|k| ident_at(body, k)) {
            return Some((field.to_string(), i + 4));
        }
    }
    None
}

/// If the statement containing token `i` is a `let <name> = ...` binding,
/// return the bound name.
fn let_binding(body: &[Token], i: usize) -> Option<String> {
    // Scan back to the start of the statement.
    let mut s = i;
    while s > 0 {
        if let TokenKind::Punct(p) = &body[s - 1].kind {
            if p == ";" || p == "{" || p == "}" {
                break;
            }
        }
        s -= 1;
    }
    if !is_ident(body, s, "let") {
        return None;
    }
    let mut k = s + 1;
    if is_ident(body, k, "mut") {
        k += 1;
    }
    let name = ident_at(body, k)?;
    if !is_punct(body, k + 1, "=") {
        return None;
    }
    // `let x = *lock(&y);` copies the guarded value and releases immediately;
    // the binding is a value, not a guard.
    if is_punct(body, k + 2, "*") {
        return None;
    }
    Some(name.to_string())
}

/// Index just past the `)` matching the `(` at `open`.
fn skip_parens(body: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < body.len() {
        match &body[k].kind {
            TokenKind::Punct(p) if p == "(" => depth += 1,
            TokenKind::Punct(p) if p == ")" => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
        k += 1;
    }
    k
}

/// Detect a plain call at token `i`: `name(...)` or `.name(...)`.
fn call_at(body: &[Token], i: usize) -> Option<String> {
    if is_punct(body, i, ".") {
        let name = ident_at(body, i + 1)?;
        return is_punct(body, i + 2, "(").then(|| name.to_string());
    }
    if let Some(name) = ident_at(body, i) {
        // Exclude macro invocations (`name!(...)`) and method calls already
        // handled via the `.` arm (the previous token would be `.`).
        if is_punct(body, i + 1, "(") && !(i > 0 && is_punct(body, i - 1, ".")) {
            return Some(name.to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn facts_of(src: &str) -> FileFacts {
        extract(&lex(src))
    }

    #[test]
    fn nested_lock_produces_an_edge() {
        let f = facts_of(
            "fn f(&self) { let a = lock(&self.queue); let b = lock(&self.deadlines); drop(a); }",
        );
        let edges = &f.functions[0].edges;
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].held, "queue");
        assert_eq!(edges[0].acquired, "deadlines");
    }

    #[test]
    fn dropped_guard_stops_producing_edges() {
        let f = facts_of(
            "fn f(&self) { let a = lock(&self.queue); drop(a); let b = lock(&self.deadlines); }",
        );
        assert!(f.functions[0].edges.is_empty());
    }

    #[test]
    fn temporary_guard_releases_at_statement_end() {
        let f = facts_of("fn f(&self) { *lock(&self.counter) += 1; let b = lock(&self.other); }");
        assert!(
            f.functions[0].edges.is_empty(),
            "{:?}",
            f.functions[0].edges
        );
    }

    #[test]
    fn deref_copy_binding_is_a_temporary() {
        // `let x = *lock(&y);` copies the value out; the guard dies with the
        // statement, so no edge to a later acquisition.
        let f =
            facts_of("fn f(&self) { let x = *lock(&self.counter); let w = lock(&self.waits); }");
        assert!(
            f.functions[0].edges.is_empty(),
            "{:?}",
            f.functions[0].edges
        );
    }

    #[test]
    fn chained_method_consumes_the_guard() {
        let f = facts_of(
            "fn f(&self) { let n = lock(&self.state).observations; let w = lock(&self.waits); }",
        );
        assert!(
            f.functions[0].edges.is_empty(),
            "{:?}",
            f.functions[0].edges
        );
    }

    #[test]
    fn lock_unwrap_still_binds_the_guard() {
        let f = facts_of(
            "fn f(&self) { let g = self.records.lock().unwrap(); let w = lock(&self.waits); }",
        );
        let edges = &f.functions[0].edges;
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].held, "records");
    }

    #[test]
    fn method_lock_is_detected() {
        let f = facts_of("fn f(&self) { let g = self.records.lock(); self.free.lock(); }");
        let edges = &f.functions[0].edges;
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].held, "records");
        assert_eq!(edges[0].acquired, "free");
    }

    #[test]
    fn guard_param_counts_as_held() {
        let f = facts_of(
            "fn f(&self, mut queue: MutexGuard<'_, QueueState>) { let d = lock(&self.deadlines); }",
        );
        let edges = &f.functions[0].edges;
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].held, "type:QueueState");
    }

    #[test]
    fn block_scoped_guard_releases_at_block_end() {
        let f = facts_of(
            "fn f(&self) { { let a = lock(&self.queue); } let b = lock(&self.deadlines); }",
        );
        assert!(f.functions[0].edges.is_empty());
    }

    #[test]
    fn spawn_and_test_attribution() {
        let f = facts_of(
            "fn prod() { std::thread::spawn(|| {}); }\n\
             #[cfg(test)] mod tests { fn t() { std::thread::spawn(|| {}); } }",
        );
        assert_eq!(f.spawns.len(), 2);
        assert!(!f.spawns[0].in_test);
        assert!(f.spawns[1].in_test);
    }

    #[test]
    fn launch_accumulation_is_flagged() {
        let f = facts_of("fn f(d: &Device) { d.launch(\"k\", n, |ctx| { acc += x; }); }");
        assert_eq!(f.launch_accums.len(), 1);
    }

    #[test]
    fn accumulation_outside_launch_is_not_flagged() {
        let f = facts_of("fn f() { total += 1.0; }");
        assert!(f.launch_accums.is_empty());
    }

    #[test]
    fn closure_local_accumulator_is_the_blessed_form() {
        let f = facts_of(
            "fn f(d: &Device) { d.launch(\"k\", n, |ctx| { \
                 let mut sum = 0.0; sum += x; sum }); }",
        );
        assert!(f.launch_accums.is_empty());
    }

    #[test]
    fn closure_param_accumulator_is_not_flagged() {
        let f = facts_of("fn f(d: &Device) { d.launch(\"k\", n, |acc, x| { acc += x; }); }");
        assert!(f.launch_accums.is_empty());
    }

    #[test]
    fn indexed_captured_accumulation_is_flagged() {
        let f = facts_of("fn f(d: &Device) { d.launch(\"k\", n, |ctx| { out[i] += x; }); }");
        assert_eq!(f.launch_accums.len(), 1);
    }

    #[test]
    fn launch_batch_captured_accumulation_is_flagged() {
        let f = facts_of(
            "fn f(d: &Device) { d.launch_batch(\"k\", n, 1, &mut out, |ctx, slot| { \
                 acc += x; }); }",
        );
        assert_eq!(f.launch_accums.len(), 1);
    }

    #[test]
    fn launch_batch_lane_param_writes_are_the_blessed_form() {
        let f = facts_of(
            "fn f(d: &Device) { d.launch_batch(\"k\", n, 2, &mut out, |ctx, slot| { \
                 let mut sum = 0.0; sum += x; slot[0] += sum; }); }",
        );
        assert!(f.launch_accums.is_empty());
    }

    #[test]
    fn mutex_decls_resolve_fields_and_inner_types() {
        let f = facts_of("struct S { queue: Mutex<QueueState>, n: Arc<Mutex<f64>> }");
        assert_eq!(f.mutex_decls.len(), 2);
        assert_eq!(f.mutex_decls[0].field, "queue");
        assert_eq!(f.mutex_decls[0].inner_type, "QueueState");
        assert_eq!(f.mutex_decls[1].field, "n");
    }

    #[test]
    fn unsafe_forms_are_classified() {
        let f = facts_of(
            "unsafe impl Send for X {}\n\
             unsafe fn g(p: *const ()) {}\n\
             fn h(x: unsafe fn(*const ())) {}\n\
             fn i() { unsafe { core(); } }",
        );
        let forms: Vec<_> = f.unsafe_sites.iter().map(|u| u.form).collect();
        assert_eq!(
            forms,
            vec![UnsafeForm::Impl, UnsafeForm::FnDef, UnsafeForm::Block]
        );
    }

    #[test]
    fn held_calls_record_the_held_set() {
        let f = facts_of("fn f(&self) { let q = lock(&self.queue); self.arm_deadline(1); }");
        let calls = &f.functions[0].held_calls;
        assert!(calls
            .iter()
            .any(|c| c.callee == "arm_deadline" && c.held == ["queue"]));
    }
}
