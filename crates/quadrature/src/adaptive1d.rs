//! Globally-adaptive one-dimensional quadrature.
//!
//! A miniature QUADPACK-style integrator built on the GK(7,15) rule: the interval with
//! the largest error estimate is bisected until the requested tolerance is met.  It is
//! the 1-D analogue of Cuhre and serves two roles in the reproduction:
//!
//! * computing reference values for integrands whose analytic value reduces to a 1-D
//!   integral (the half-integer box integrals f8, the Gaussian family via `erf`), and
//! * integrating the 1-D factors of product-form test integrands.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::gauss_kronrod::gauss_kronrod_15;

/// Outcome of a 1-D adaptive integration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adaptive1dResult {
    /// Integral estimate.
    pub integral: f64,
    /// Absolute error estimate.
    pub error: f64,
    /// Number of GK(7,15) evaluations (intervals processed).
    pub intervals: usize,
    /// Whether the requested tolerance was met.
    pub converged: bool,
}

#[derive(Debug)]
struct Interval {
    a: f64,
    b: f64,
    integral: f64,
    error: f64,
}

impl PartialEq for Interval {
    fn eq(&self, other: &Self) -> bool {
        self.error == other.error
    }
}
impl Eq for Interval {}
impl PartialOrd for Interval {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Interval {
    fn cmp(&self, other: &Self) -> Ordering {
        self.error
            .partial_cmp(&other.error)
            .unwrap_or(Ordering::Equal)
    }
}

/// Integrate `f` over `[a, b]` to relative tolerance `rel_tol` or absolute tolerance
/// `abs_tol`, using at most `max_intervals` interval evaluations.
#[must_use]
pub fn integrate_1d<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    rel_tol: f64,
    abs_tol: f64,
    max_intervals: usize,
) -> Adaptive1dResult {
    let first = gauss_kronrod_15(f, a, b);
    let mut heap = BinaryHeap::new();
    heap.push(Interval {
        a,
        b,
        integral: first.integral,
        error: first.error,
    });
    let mut total_integral = first.integral;
    let mut total_error = first.error;
    let mut intervals = 1usize;

    while intervals < max_intervals {
        if total_error <= rel_tol * total_integral.abs() || total_error <= abs_tol {
            return Adaptive1dResult {
                integral: total_integral,
                error: total_error,
                intervals,
                converged: true,
            };
        }
        let Some(worst) = heap.pop() else { break };
        let mid = 0.5 * (worst.a + worst.b);
        if mid <= worst.a || mid >= worst.b {
            // Interval can no longer be bisected in floating point.
            heap.push(worst);
            break;
        }
        let left = gauss_kronrod_15(f, worst.a, mid);
        let right = gauss_kronrod_15(f, mid, worst.b);
        total_integral += left.integral + right.integral - worst.integral;
        total_error += left.error + right.error - worst.error;
        heap.push(Interval {
            a: worst.a,
            b: mid,
            integral: left.integral,
            error: left.error,
        });
        heap.push(Interval {
            a: mid,
            b: worst.b,
            integral: right.integral,
            error: right.error,
        });
        intervals += 2;
    }

    let converged = total_error <= rel_tol * total_integral.abs() || total_error <= abs_tol;
    Adaptive1dResult {
        integral: total_integral,
        error: total_error,
        intervals,
        converged,
    }
}

/// Convenience wrapper with tight defaults for reference-value computation:
/// `rel_tol = 1e-13`, `abs_tol = 1e-300`, up to 200 000 intervals.
#[must_use]
pub fn integrate_1d_reference<F: Fn(f64) -> f64>(f: &F, a: f64, b: f64) -> Adaptive1dResult {
    integrate_1d(f, a, b, 1e-13, 1e-300, 200_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn smooth_integral_converges_quickly() {
        let r = integrate_1d(&f64::exp, 0.0, 1.0, 1e-12, 0.0, 1000);
        assert!(r.converged);
        assert!((r.integral - (std::f64::consts::E - 1.0)).abs() < 1e-12);
        assert!(r.intervals <= 3);
    }

    #[test]
    fn peaked_integrand_requires_adaptivity() {
        // Narrow Lorentzian peak at 0.3.
        let f = |x: f64| 1.0 / ((x - 0.3).powi(2) + 1e-6);
        let r = integrate_1d(&f, 0.0, 1.0, 1e-10, 0.0, 10_000);
        assert!(r.converged);
        let exact = ((0.7f64 / 1e-3).atan() + (0.3f64 / 1e-3).atan()) / 1e-3;
        assert!((r.integral - exact).abs() / exact < 1e-9);
        assert!(r.intervals > 10, "adaptivity should have subdivided");
    }

    #[test]
    fn absolute_value_kink_is_handled() {
        let r = integrate_1d(&|x: f64| (x - 0.5).abs(), 0.0, 1.0, 1e-12, 0.0, 10_000);
        assert!(r.converged);
        assert!((r.integral - 0.25).abs() < 1e-12);
    }

    #[test]
    fn budget_exhaustion_reports_not_converged() {
        let f = |x: f64| 1.0 / ((x - 0.31).powi(2) + 1e-12);
        let r = integrate_1d(&f, 0.0, 1.0, 1e-14, 0.0, 5);
        assert!(!r.converged);
        assert!(r.intervals <= 5);
    }

    #[test]
    fn reference_wrapper_is_tight() {
        let r = integrate_1d_reference(&|x: f64| (-x * x).exp(), 0.0, 1.0);
        assert!(r.converged);
        // erf(1) * sqrt(pi)/2
        assert!((r.integral - 0.746_824_132_812_427_4).abs() < 1e-12);
    }

    #[test]
    fn oscillatory_integrand() {
        let r = integrate_1d(&|x: f64| (40.0 * x).sin(), 0.0, 1.0, 1e-11, 0.0, 50_000);
        assert!(r.converged);
        let exact = (1.0 - (40.0f64).cos()) / 40.0;
        assert!((r.integral - exact).abs() < 1e-10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_polynomial_integrals_are_exact(
            degree in 0usize..9,
            scale in -3.0f64..3.0,
            b in 0.5f64..4.0,
        ) {
            let f = move |x: f64| scale * x.powi(degree as i32);
            let r = integrate_1d(&f, 0.0, b, 1e-12, 1e-300, 2000);
            let exact = scale * b.powi(degree as i32 + 1) / (degree as f64 + 1.0);
            prop_assert!(r.converged);
            prop_assert!((r.integral - exact).abs() <= 1e-9 * exact.abs().max(1e-9));
        }

        #[test]
        fn prop_interval_additivity(split in 0.1f64..0.9) {
            let f = |x: f64| (3.0 * x).cos() + x * x;
            let whole = integrate_1d(&f, 0.0, 1.0, 1e-12, 0.0, 2000);
            let left = integrate_1d(&f, 0.0, split, 1e-12, 0.0, 2000);
            let right = integrate_1d(&f, split, 1.0, 1e-12, 0.0, 2000);
            prop_assert!((whole.integral - (left.integral + right.integral)).abs() < 1e-10);
        }
    }
}
