//! Berntsen's two-level error refinement.
//!
//! The raw error estimate of an embedded cubature pair can badly over- or
//! under-estimate the true error when a feature of the integrand (a sharp peak, a
//! discontinuity) straddles a region boundary: the feature may be visible in the
//! parent region but invisible to both children.  Berntsen (1989) proposed combining
//! the child's raw error with the disagreement between the parent estimate and the sum
//! of the two children's estimates.  PAGANI implements this in its `RefineError`
//! kernel (§3.2 of the paper); the formula below is the same one, applied by Cuhre,
//! the two-phase method and PAGANI alike so that all three report comparable errors.

/// Refine the raw error estimate of one child region.
///
/// * `self_integral`, `self_error` — the child's own rule estimates,
/// * `sibling_integral`, `sibling_error` — its sibling's rule estimates,
/// * `parent_integral` — the parent's integral estimate from the previous iteration.
///
/// Returns the refined error estimate for the child.
#[must_use]
pub fn refine_error(
    self_integral: f64,
    self_error: f64,
    sibling_integral: f64,
    sibling_error: f64,
    parent_integral: f64,
) -> f64 {
    let diff = 0.25 * (self_integral + sibling_integral - parent_integral);
    let diff = diff.abs();
    let combined = self_error + sibling_error;
    let mut refined = self_error;
    if combined > 0.0 {
        refined *= 1.0 + 2.0 * diff / combined;
    }
    refined + diff
}

/// Refine the errors of a full generation of children stored in PAGANI's layout.
///
/// PAGANI splits `m` parents into `2m` children stored with all "left" children in
/// slots `0..m` and all "right" children in slots `m..2m`; child `i` and `i±m` are
/// siblings and share parent `i mod m`.  This helper applies [`refine_error`] to every
/// child in that layout and overwrites `errors` in place.
///
/// # Panics
/// Panics if `integrals`/`errors` do not have the same even length `2m` or if
/// `parent_integrals` does not have length `m`.
pub fn refine_generation(integrals: &[f64], errors: &mut [f64], parent_integrals: &[f64]) {
    assert_eq!(
        integrals.len(),
        errors.len(),
        "integral/error length mismatch"
    );
    assert!(
        integrals.len() % 2 == 0,
        "a full generation has an even number of children"
    );
    let half = integrals.len() / 2;
    assert_eq!(
        parent_integrals.len(),
        half,
        "expected one parent per sibling pair"
    );
    let raw_errors: Vec<f64> = errors.to_vec();
    for i in 0..integrals.len() {
        let sibling = if i < half { i + half } else { i - half };
        let parent = if i < half { i } else { i - half };
        errors[i] = refine_error(
            integrals[i],
            raw_errors[i],
            integrals[sibling],
            raw_errors[sibling],
            parent_integrals[parent],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_agreement_keeps_raw_error() {
        // Children sum exactly to the parent: diff = 0, error unchanged.
        let refined = refine_error(1.0, 0.1, 2.0, 0.2, 3.0);
        assert!((refined - 0.1).abs() < 1e-15);
    }

    #[test]
    fn disagreement_inflates_error() {
        // Children sum to 3.0 but the parent said 5.0: diff = 0.5.
        let refined = refine_error(1.0, 0.1, 2.0, 0.2, 5.0);
        // 0.1 * (1 + 2*0.5/0.3) + 0.5
        let expected = 0.1 * (1.0 + 2.0 * 0.5 / 0.3) + 0.5;
        assert!((refined - expected).abs() < 1e-12);
        assert!(refined > 0.1);
    }

    #[test]
    fn zero_raw_errors_still_capture_disagreement() {
        let refined = refine_error(1.0, 0.0, 1.0, 0.0, 4.0);
        assert!((refined - 0.5).abs() < 1e-15);
    }

    #[test]
    fn refine_generation_uses_sibling_layout() {
        // Two parents, four children. Parent 0 had integral 2.0, parent 1 had 4.0.
        let integrals = [1.0, 2.0, 1.0, 2.0]; // left children then right children
        let mut errors = [0.1, 0.1, 0.1, 0.1];
        let parents = [2.0, 4.0];
        refine_generation(&integrals, &mut errors, &parents);
        // Pair (0, 2) sums to 2.0 = parent 0: unchanged.
        assert!((errors[0] - 0.1).abs() < 1e-15);
        assert!((errors[2] - 0.1).abs() < 1e-15);
        // Pair (1, 3) sums to 4.0 = parent 1: unchanged.
        assert!((errors[1] - 0.1).abs() < 1e-15);
        assert!((errors[3] - 0.1).abs() < 1e-15);
    }

    #[test]
    fn refine_generation_flags_hidden_feature() {
        // Parent saw a peak (integral 10) that both children missed (1 + 1).
        let integrals = [1.0, 1.0];
        let mut errors = [0.01, 0.01];
        refine_generation(&integrals, &mut errors, &[10.0]);
        assert!(errors[0] > 1.0, "refined error should expose the lost peak");
        assert!(errors[1] > 1.0);
    }

    #[test]
    #[should_panic(expected = "one parent per sibling pair")]
    fn refine_generation_checks_parent_length() {
        let mut errors = [0.1, 0.1];
        refine_generation(&[1.0, 1.0], &mut errors, &[1.0, 1.0]);
    }

    proptest! {
        #[test]
        fn prop_refined_error_is_at_least_raw_error(
            self_int in -10.0f64..10.0,
            self_err in 0.0f64..5.0,
            sib_int in -10.0f64..10.0,
            sib_err in 0.0f64..5.0,
            parent_int in -20.0f64..20.0,
        ) {
            let refined = refine_error(self_int, self_err, sib_int, sib_err, parent_int);
            prop_assert!(refined >= self_err - 1e-15);
            prop_assert!(refined.is_finite());
        }

        #[test]
        fn prop_refined_error_monotone_in_disagreement(
            self_err in 1e-6f64..1.0,
            sib_err in 1e-6f64..1.0,
            base_diff in 0.0f64..5.0,
            extra in 0.01f64..5.0,
        ) {
            // Larger parent/children disagreement can never reduce the refined error.
            let small = refine_error(1.0, self_err, 1.0, sib_err, 2.0 + base_diff);
            let large = refine_error(1.0, self_err, 1.0, sib_err, 2.0 + base_diff + extra);
            prop_assert!(large >= small);
        }
    }
}
