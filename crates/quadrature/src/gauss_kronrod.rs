//! The 15-point Gauss–Kronrod rule on an interval.
//!
//! The paper contrasts Genz–Malik cubature (`2^n + Θ(n²)` points) with tensorised
//! Gauss–Kronrod (`15^n` points).  A one-dimensional GK(7,15) rule is also exactly
//! what is needed to compute high-accuracy reference values for the test-integrand
//! suite (see `pagani-integrands::reference`), so it is provided here together with
//! the adaptive driver in [`crate::adaptive1d`].

/// Kronrod abscissae on `[0, 1]` (symmetric about zero; only non-negative given).
const XGK: [f64; 8] = [
    0.991_455_371_120_813,
    0.949_107_912_342_759,
    0.864_864_423_359_769,
    0.741_531_185_599_394,
    0.586_087_235_467_691,
    0.405_845_151_377_397,
    0.207_784_955_007_898,
    0.0,
];

/// Kronrod weights matching [`XGK`].
const WGK: [f64; 8] = [
    0.022_935_322_010_529,
    0.063_092_092_629_979,
    0.104_790_010_322_250,
    0.140_653_259_715_525,
    0.169_004_726_639_267,
    0.190_350_578_064_785,
    0.204_432_940_075_298,
    0.209_482_141_084_728,
];

/// Embedded 7-point Gauss weights (for abscissae `XGK[1], XGK[3], XGK[5], XGK[7]`).
const WG: [f64; 4] = [
    0.129_484_966_168_870,
    0.279_705_391_489_277,
    0.381_830_050_505_119,
    0.417_959_183_673_469,
];

/// Result of one Gauss–Kronrod evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GkEstimate {
    /// Kronrod (15-point) integral estimate.
    pub integral: f64,
    /// Error estimate from the Gauss/Kronrod difference (QUADPACK-style scaling).
    pub error: f64,
}

/// Apply the GK(7,15) rule to `f` on `[a, b]`.
#[must_use]
pub fn gauss_kronrod_15<F: Fn(f64) -> f64>(f: &F, a: f64, b: f64) -> GkEstimate {
    let center = 0.5 * (a + b);
    let half = 0.5 * (b - a);

    let f_center = f(center);
    let mut kronrod = WGK[7] * f_center;
    let mut gauss = WG[3] * f_center;
    // Mean-magnitude accumulator used for the QUADPACK error scaling.
    let mut resabs = WGK[7] * f_center.abs();

    for i in 0..7 {
        let x = half * XGK[i];
        let f_lo = f(center - x);
        let f_hi = f(center + x);
        let pair = f_lo + f_hi;
        kronrod += WGK[i] * pair;
        resabs += WGK[i] * (f_lo.abs() + f_hi.abs());
        if i % 2 == 1 {
            gauss += WG[i / 2] * pair;
        }
    }

    let integral = kronrod * half;
    let raw_error = ((kronrod - gauss) * half).abs();
    // QUADPACK's resasc-free scaling: sharpen the raw difference.
    let scale = resabs * half.abs();
    let error = if scale > 0.0 && raw_error > 0.0 {
        let ratio = (200.0 * raw_error / scale).powf(1.5).min(1.0);
        (scale * ratio).min(raw_error.max(f64::EPSILON * scale))
    } else {
        raw_error
    };
    GkEstimate {
        integral,
        error: error.max(raw_error * 1e-3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomials_up_to_degree_14_are_near_exact() {
        // Kronrod 15 integrates polynomials of degree ≤ 22 exactly; degree 14 is a
        // comfortable check.
        let est = gauss_kronrod_15(&|x: f64| x.powi(14), 0.0, 1.0);
        assert!((est.integral - 1.0 / 15.0).abs() < 1e-14);
    }

    #[test]
    fn constant_over_arbitrary_interval() {
        let est = gauss_kronrod_15(&|_| 2.5, -3.0, 5.0);
        assert!((est.integral - 20.0).abs() < 1e-12);
        assert!(est.error < 1e-10);
    }

    #[test]
    fn sine_integral_is_accurate() {
        let est = gauss_kronrod_15(&f64::sin, 0.0, std::f64::consts::PI);
        assert!((est.integral - 2.0).abs() < 1e-10);
        assert!(est.error > (est.integral - 2.0).abs() * 0.1 || est.error < 1e-6);
    }

    #[test]
    fn error_estimate_grows_for_rough_integrands() {
        let smooth = gauss_kronrod_15(&|x: f64| x * x, 0.0, 1.0);
        let rough = gauss_kronrod_15(&|x: f64| (50.0 * x).sin().abs(), 0.0, 1.0);
        assert!(rough.error > smooth.error);
    }

    #[test]
    fn reversed_interval_gives_negated_integral() {
        let forward = gauss_kronrod_15(&|x: f64| x.exp(), 0.0, 1.0);
        let backward = gauss_kronrod_15(&|x: f64| x.exp(), 1.0, 0.0);
        assert!((forward.integral + backward.integral).abs() < 1e-12);
    }

    #[test]
    fn weights_sum_to_interval_length() {
        // Σ kronrod weights = 2 on [-1,1] (centre weight counted once, others twice).
        let total: f64 = WGK[..7].iter().map(|w| 2.0 * w).sum::<f64>() + WGK[7];
        assert!((total - 2.0).abs() < 1e-12);
        let total_gauss: f64 = WG[..3].iter().map(|w| 2.0 * w).sum::<f64>() + WG[3];
        assert!((total_gauss - 2.0).abs() < 1e-12);
    }
}
