//! The Genz–Malik degree-7/5 embedded fully-symmetric cubature rule family.
//!
//! This is the rule used by DCUHRE, Cuba's Cuhre, the two-phase GPU method and PAGANI
//! (§2.1 and §3.2 of the paper).  For an `n`-dimensional hyper-rectangle it evaluates
//! the integrand at `2^n + 2n² + 2n + 1` points arranged in five fully-symmetric
//! orbits and produces:
//!
//! * a degree-7 integral estimate,
//! * an embedded degree-5 estimate whose difference from the degree-7 estimate is the
//!   error estimate, and
//! * the axis along which the scaled fourth divided difference of the integrand is
//!   largest, which is the axis the adaptive algorithms split next.
//!
//! The weights follow Genz & Malik (1983); the same constants are used by the
//! reference `cubature` and `gpuintegration` implementations.

use crate::integrand::Integrand;
use crate::region::Region;

/// λ₂ = √(9/70): offset of the first single-axis orbit.
const LAMBDA2: f64 = 0.358_568_582_800_318_1;
/// λ₄ = √(9/10): offset of the second single-axis orbit and of the two-axis orbit.
const LAMBDA4: f64 = 0.948_683_298_050_513_8;
/// λ₅ = √(9/19): offset of the corner orbit.
const LAMBDA5: f64 = 0.688_247_201_611_685_3;
/// Ratio λ₂²/λ₄² used by the fourth-difference split-axis criterion.
const RATIO: f64 = (9.0 / 70.0) / (9.0 / 10.0);

/// Result of evaluating the rule on one region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleEstimate {
    /// Degree-7 integral estimate.
    pub integral: f64,
    /// Error estimate `|I₇ − I₅|`.
    pub error: f64,
    /// Axis with the largest scaled fourth difference — the recommended split axis.
    pub split_axis: usize,
    /// Number of integrand evaluations performed (constant for a given dimension).
    pub evaluations: usize,
}

/// Reusable scratch space for rule evaluation.
///
/// The hot loops of every integrator evaluate the rule millions of times; keeping the
/// point buffer and the per-axis difference accumulators out of the allocator is the
/// same optimisation the CUDA kernels get from shared memory.
#[derive(Debug, Clone)]
pub struct EvalScratch {
    point: Vec<f64>,
    fourth_diff: Vec<f64>,
    sum_lambda2: Vec<f64>,
    sum_lambda4: Vec<f64>,
}

impl EvalScratch {
    /// Scratch space for a `dim`-dimensional rule.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        Self {
            point: vec![0.0; dim],
            fourth_diff: vec![0.0; dim],
            sum_lambda2: vec![0.0; dim],
            sum_lambda4: vec![0.0; dim],
        }
    }
}

/// The Genz–Malik degree-7/5 embedded rule for a fixed dimension.
#[derive(Debug, Clone)]
pub struct GenzMalik {
    dim: usize,
    /// Degree-7 weights for the five orbits (centre, ±λ₂eᵢ, ±λ₄eᵢ, two-axis, corners).
    w: [f64; 5],
    /// Embedded degree-5 weights for the first four orbits.
    we: [f64; 4],
    num_points: usize,
}

impl GenzMalik {
    /// Construct the rule for `dim` dimensions.
    ///
    /// # Panics
    /// Panics if `dim < 2` (the fully-symmetric construction needs at least two axes;
    /// use the Gauss–Kronrod rule in [`crate::gauss_kronrod`] for one-dimensional
    /// problems) or if `dim > 30` (the corner orbit alone would exceed 2³⁰ points).
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(
            (2..=30).contains(&dim),
            "Genz-Malik rule supports 2..=30 dimensions, got {dim}"
        );
        let n = dim as f64;
        let w = [
            (12824.0 - 9120.0 * n + 400.0 * n * n) / 19683.0,
            980.0 / 6561.0,
            (1820.0 - 400.0 * n) / 19683.0,
            200.0 / 19683.0,
            6859.0 / 19683.0 / (1u64 << dim) as f64,
        ];
        let we = [
            (729.0 - 950.0 * n + 50.0 * n * n) / 729.0,
            245.0 / 486.0,
            (265.0 - 100.0 * n) / 1458.0,
            25.0 / 729.0,
        ];
        let num_points = 1 + 4 * dim + 2 * dim * (dim - 1) + (1usize << dim);
        Self {
            dim,
            w,
            we,
            num_points,
        }
    }

    /// Dimensionality the rule was built for.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of integrand evaluations per region: `2^n + 2n² + 2n + 1`.
    #[must_use]
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// Evaluate the rule on the region described by `center` and `halfwidth`.
    ///
    /// # Panics
    /// Panics if the slice lengths do not match the rule dimension.
    pub fn evaluate_centered<F: Integrand + ?Sized>(
        &self,
        f: &F,
        center: &[f64],
        halfwidth: &[f64],
        scratch: &mut EvalScratch,
    ) -> RuleEstimate {
        assert_eq!(center.len(), self.dim, "center has wrong dimension");
        assert_eq!(halfwidth.len(), self.dim, "halfwidth has wrong dimension");
        assert_eq!(scratch.point.len(), self.dim, "scratch has wrong dimension");

        let dim = self.dim;
        let volume: f64 = halfwidth.iter().map(|&h| 2.0 * h).product();

        let point = &mut scratch.point;
        point.copy_from_slice(center);

        // Orbit 1: the centre.
        let f_center = f.eval(point);
        let sum1 = f_center;

        // Orbits 2 and 3: single-axis offsets at λ₂ and λ₄.
        let mut sum2 = 0.0;
        let mut sum3 = 0.0;
        for axis in 0..dim {
            let h = halfwidth[axis];
            let c = center[axis];

            point[axis] = c - LAMBDA2 * h;
            let f2_lo = f.eval(point);
            point[axis] = c + LAMBDA2 * h;
            let f2_hi = f.eval(point);

            point[axis] = c - LAMBDA4 * h;
            let f4_lo = f.eval(point);
            point[axis] = c + LAMBDA4 * h;
            let f4_hi = f.eval(point);

            point[axis] = c;

            let pair2 = f2_lo + f2_hi;
            let pair4 = f4_lo + f4_hi;
            sum2 += pair2;
            sum3 += pair4;
            scratch.sum_lambda2[axis] = pair2;
            scratch.sum_lambda4[axis] = pair4;
            // Scaled fourth divided difference along this axis (Genz–Malik split
            // criterion, also used by cubature and DCUHRE).
            scratch.fourth_diff[axis] =
                (pair2 - 2.0 * f_center - RATIO * (pair4 - 2.0 * f_center)).abs();
        }

        // Orbit 4: two-axis offsets (±λ₄, ±λ₄) for every axis pair.
        let mut sum4 = 0.0;
        for i in 0..dim {
            for j in (i + 1)..dim {
                let ci = center[i];
                let cj = center[j];
                let hi = halfwidth[i];
                let hj = halfwidth[j];
                for &(si, sj) in &[(1.0, 1.0), (1.0, -1.0), (-1.0, 1.0), (-1.0, -1.0)] {
                    point[i] = ci + si * LAMBDA4 * hi;
                    point[j] = cj + sj * LAMBDA4 * hj;
                    sum4 += f.eval(point);
                }
                point[i] = ci;
                point[j] = cj;
            }
        }

        // Orbit 5: the 2^n corner points at ±λ₅ in every axis.
        let mut sum5 = 0.0;
        let corners = 1usize << dim;
        for bits in 0..corners {
            for axis in 0..dim {
                let sign = if bits & (1 << axis) == 0 { 1.0 } else { -1.0 };
                point[axis] = center[axis] + sign * LAMBDA5 * halfwidth[axis];
            }
            sum5 += f.eval(point);
        }
        point.copy_from_slice(center);

        let integral = volume
            * (self.w[0] * sum1
                + self.w[1] * sum2
                + self.w[2] * sum3
                + self.w[3] * sum4
                + self.w[4] * sum5);
        let fifth_degree = volume
            * (self.we[0] * sum1 + self.we[1] * sum2 + self.we[2] * sum3 + self.we[3] * sum4);
        let error = (integral - fifth_degree).abs();

        // Split axis: largest fourth difference; ties broken towards the widest edge
        // so repeated splitting cannot starve an axis.
        let mut split_axis = 0;
        let mut best_diff = scratch.fourth_diff[0];
        let mut best_width = halfwidth[0];
        for (axis, (&d, &width)) in scratch.fourth_diff[..dim]
            .iter()
            .zip(&halfwidth[..dim])
            .enumerate()
            .skip(1)
        {
            if d > best_diff || (d == best_diff && width > best_width) {
                split_axis = axis;
                best_diff = d;
                best_width = width;
            }
        }

        RuleEstimate {
            integral,
            error,
            split_axis,
            evaluations: self.num_points,
        }
    }

    /// Evaluate the rule on a [`Region`].
    pub fn evaluate<F: Integrand + ?Sized>(
        &self,
        f: &F,
        region: &Region,
        scratch: &mut EvalScratch,
    ) -> RuleEstimate {
        self.evaluate_centered(f, &region.center(), &region.halfwidths(), scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrand::FnIntegrand;
    use proptest::prelude::*;

    fn eval_on_unit_cube(dim: usize, f: impl Fn(&[f64]) -> f64 + Sync) -> RuleEstimate {
        let rule = GenzMalik::new(dim);
        let mut scratch = EvalScratch::new(dim);
        let region = Region::unit_cube(dim);
        rule.evaluate(&FnIntegrand::new(dim, f), &region, &mut scratch)
    }

    #[test]
    fn point_count_formula() {
        for dim in 2..=10 {
            let rule = GenzMalik::new(dim);
            assert_eq!(
                rule.num_points(),
                (1usize << dim) + 2 * dim * dim + 2 * dim + 1
            );
        }
        assert_eq!(GenzMalik::new(2).num_points(), 4 + 8 + 4 + 1);
        assert_eq!(GenzMalik::new(3).num_points(), 8 + 18 + 6 + 1);
    }

    #[test]
    #[should_panic(expected = "2..=30 dimensions")]
    fn dimension_one_is_rejected() {
        let _ = GenzMalik::new(1);
    }

    #[test]
    fn constant_is_integrated_exactly() {
        for dim in 2..=6 {
            let est = eval_on_unit_cube(dim, |_| 3.5);
            assert!((est.integral - 3.5).abs() < 1e-12, "dim {dim}");
            assert!(est.error < 1e-12, "dim {dim}");
        }
    }

    #[test]
    fn degree_seven_polynomials_are_exact() {
        // x0^7 over [0,1]^3 integrates to 1/8; degree 7 is within the rule's degree.
        let est = eval_on_unit_cube(3, |x| x[0].powi(7));
        assert!((est.integral - 0.125).abs() < 1e-10, "got {}", est.integral);
        // Mixed monomial of total degree 7.
        let est = eval_on_unit_cube(3, |x| x[0].powi(3) * x[1].powi(2) * x[2].powi(2));
        let exact = (1.0 / 4.0) * (1.0 / 3.0) * (1.0 / 3.0);
        assert!((est.integral - exact).abs() < 1e-12);
    }

    #[test]
    fn degree_nine_polynomial_is_not_exact_but_error_bounds_it() {
        let est = eval_on_unit_cube(2, |x| x[0].powi(9) * x[1].powi(8));
        let exact = (1.0 / 10.0) * (1.0 / 9.0);
        let true_err = (est.integral - exact).abs();
        assert!(true_err > 0.0);
        // The embedded error estimate should be of the same magnitude or larger.
        assert!(est.error >= 0.1 * true_err);
    }

    #[test]
    fn scales_with_region_volume() {
        let rule = GenzMalik::new(2);
        let mut scratch = EvalScratch::new(2);
        let f = FnIntegrand::new(2, |_: &[f64]| 2.0);
        let region = Region::new(vec![0.0, 0.0], vec![3.0, 0.5]);
        let est = rule.evaluate(&f, &region, &mut scratch);
        assert!((est.integral - 2.0 * 1.5).abs() < 1e-12);
    }

    #[test]
    fn split_axis_follows_variation() {
        // Variation is much stronger along axis 1 than axis 0.
        let est = eval_on_unit_cube(3, |x| (20.0 * x[1]).sin() + 0.01 * x[0]);
        assert_eq!(est.split_axis, 1);
    }

    #[test]
    fn split_axis_prefers_wider_edge_on_ties() {
        let rule = GenzMalik::new(2);
        let mut scratch = EvalScratch::new(2);
        let f = FnIntegrand::new(2, |_: &[f64]| 1.0);
        // Constant integrand: all fourth differences are zero, widest axis wins.
        let region = Region::new(vec![0.0, 0.0], vec![1.0, 4.0]);
        let est = rule.evaluate(&f, &region, &mut scratch);
        assert_eq!(est.split_axis, 1);
    }

    #[test]
    fn gaussian_estimate_is_close_on_small_region() {
        // On a small region around the peak the rule should already be very accurate.
        let rule = GenzMalik::new(2);
        let mut scratch = EvalScratch::new(2);
        let f = FnIntegrand::new(2, |x: &[f64]| {
            (-((x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2)) * 4.0).exp()
        });
        let region = Region::new(vec![0.45, 0.45], vec![0.55, 0.55]);
        let est = rule.evaluate(&f, &region, &mut scratch);
        // Reference from a fine tensor Simpson evaluation of the same patch.
        let reference = simpson_2d(
            &|x, y| (-((x - 0.5f64).powi(2) + (y - 0.5).powi(2)) * 4.0).exp(),
            0.45,
            0.55,
            0.45,
            0.55,
            64,
        );
        assert!((est.integral - reference).abs() < 1e-9);
    }

    fn simpson_2d(
        f: &dyn Fn(f64, f64) -> f64,
        x0: f64,
        x1: f64,
        y0: f64,
        y1: f64,
        n: usize,
    ) -> f64 {
        let simpson_1d = |g: &dyn Fn(f64) -> f64, a: f64, b: f64| {
            let h = (b - a) / n as f64;
            let mut s = g(a) + g(b);
            for i in 1..n {
                let w = if i % 2 == 1 { 4.0 } else { 2.0 };
                s += w * g(a + i as f64 * h);
            }
            s * h / 3.0
        };
        simpson_1d(&|y| simpson_1d(&|x| f(x, y), x0, x1), y0, y1)
    }

    #[test]
    fn evaluation_count_matches_reported() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        let dim = 4;
        let rule = GenzMalik::new(dim);
        let mut scratch = EvalScratch::new(dim);
        let f = FnIntegrand::new(dim, |_: &[f64]| {
            count.fetch_add(1, Ordering::Relaxed);
            1.0
        });
        let est = rule.evaluate(&f, &Region::unit_cube(dim), &mut scratch);
        assert_eq!(count.load(Ordering::Relaxed), est.evaluations);
        assert_eq!(est.evaluations, rule.num_points());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_linear_functions_are_exact(
            dim in 2usize..6,
            coeffs in proptest::collection::vec(-5.0f64..5.0, 2..6),
            constant in -5.0f64..5.0,
        ) {
            let dim = dim.min(coeffs.len());
            let coeffs = coeffs[..dim].to_vec();
            let c2 = coeffs.clone();
            let est = eval_on_unit_cube(dim, move |x| {
                constant + x.iter().zip(&c2).map(|(xi, ci)| xi * ci).sum::<f64>()
            });
            let exact = constant + coeffs.iter().sum::<f64>() * 0.5;
            prop_assert!((est.integral - exact).abs() < 1e-10 * exact.abs().max(1.0));
            prop_assert!(est.error < 1e-9 * exact.abs().max(1.0));
        }

        #[test]
        fn prop_error_is_nonnegative_and_finite(
            dim in 2usize..5,
            freq in 0.5f64..8.0,
        ) {
            let est = eval_on_unit_cube(dim, move |x| (freq * x.iter().sum::<f64>()).cos());
            prop_assert!(est.error.is_finite());
            prop_assert!(est.error >= 0.0);
            prop_assert!(est.integral.is_finite());
        }

        #[test]
        fn prop_additivity_under_split(
            dim in 2usize..4,
            axis_seed in 0usize..16,
            freq in 0.5f64..4.0,
        ) {
            // Splitting a region and summing the two children's estimates should agree
            // with the parent estimate to within the combined error estimates for a
            // smooth integrand.
            let dim_usize = dim;
            let rule = GenzMalik::new(dim_usize);
            let mut scratch = EvalScratch::new(dim_usize);
            let f = FnIntegrand::new(dim_usize, move |x: &[f64]| (freq * x.iter().sum::<f64>()).sin() + 2.0);
            let parent = Region::unit_cube(dim_usize);
            let axis = axis_seed % dim_usize;
            let (a, b) = parent.split(axis);
            let ep = rule.evaluate(&f, &parent, &mut scratch);
            let ea = rule.evaluate(&f, &a, &mut scratch);
            let eb = rule.evaluate(&f, &b, &mut scratch);
            let tolerance = ep.error + ea.error + eb.error + 1e-10;
            prop_assert!((ep.integral - (ea.integral + eb.integral)).abs() <= tolerance);
        }
    }
}
