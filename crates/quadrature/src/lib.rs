//! Cubature substrates for the PAGANI reproduction.
//!
//! This crate contains everything the integrators share and nothing that is specific
//! to any one of them:
//!
//! * [`Integrand`] — the user-facing trait for multi-dimensional integrands.
//! * [`Region`] — an axis-aligned hyper-rectangle with splitting helpers.
//! * [`GenzMalik`] — the degree-7/5 embedded fully-symmetric cubature rule family of
//!   Genz & Malik (1983), the rule used by Cuhre, the two-phase GPU method and PAGANI.
//!   Evaluating a region yields the integral estimate, the embedded error estimate and
//!   the split axis chosen by the scaled fourth-difference criterion.
//! * [`two_level`] — Berntsen's two-level error refinement as implemented by PAGANI's
//!   `RefineError` kernel.
//! * [`gauss_kronrod`] / [`adaptive1d`] — a 15-point Gauss–Kronrod rule and a 1-D
//!   adaptive integrator, used to compute analytic-quality reference values for the
//!   test integrands and as a general 1-D substrate.
//! * [`result`] — the result / tolerance / termination types every integrator returns.

#![warn(missing_docs)]
#![warn(unreachable_pub)]
#![forbid(unsafe_code)]

pub mod adaptive1d;
pub mod gauss_kronrod;
pub mod genz_malik;
pub mod integrand;
pub mod region;
pub mod result;
pub mod two_level;

pub use genz_malik::{EvalScratch, GenzMalik, RuleEstimate};
pub use integrand::{FnIntegrand, Integrand};
pub use region::Region;
pub use result::{
    paper_tolerance_sweep, rel_tol_for_digits, IntegrationResult, Termination, Tolerances,
};
