//! Result, tolerance and termination types shared by all integrators.

use std::time::Duration;

/// User-specified accuracy targets.
///
/// An integrator terminates successfully when either the estimated relative error
/// `e/|v|` drops below `rel` or the estimated absolute error `e` drops below `abs`
/// (Algorithm 2, line 15).  The paper's experiments fix `abs = 1e-20` so that the
/// relative tolerance is always the binding constraint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Relative error tolerance τ_rel.
    pub rel: f64,
    /// Absolute error tolerance τ_abs.
    pub abs: f64,
}

impl Tolerances {
    /// Relative tolerance `rel` with the paper's absolute tolerance of `1e-20`.
    #[must_use]
    pub fn rel(rel: f64) -> Self {
        Self { rel, abs: 1e-20 }
    }

    /// Tolerance corresponding to `digits` decimal digits of relative precision.
    #[must_use]
    pub fn digits(digits: f64) -> Self {
        Self::rel(rel_tol_for_digits(digits))
    }

    /// Whether an estimate `v` with error estimate `e` satisfies the tolerances.
    #[must_use]
    pub fn satisfied_by(&self, v: f64, e: f64) -> bool {
        e <= self.rel * v.abs() || e <= self.abs
    }

    /// The requested number of digits of precision, `log10(1/rel)`.
    #[must_use]
    pub fn digits_requested(&self) -> f64 {
        -self.rel.log10()
    }
}

impl Default for Tolerances {
    fn default() -> Self {
        Self::rel(1e-3)
    }
}

/// Relative tolerance corresponding to a requested number of precision digits,
/// i.e. `10^-digits`.
#[must_use]
pub fn rel_tol_for_digits(digits: f64) -> f64 {
    10f64.powf(-digits)
}

/// The τ_rel sweep used throughout the paper's evaluation: starting at `10^-3` and
/// dividing by 5 each step down to `1.024·10^-10` (11 values).
#[must_use]
pub fn paper_tolerance_sweep() -> Vec<f64> {
    let mut out = Vec::with_capacity(11);
    let mut rel = 1e-3;
    for _ in 0..11 {
        out.push(rel);
        rel /= 5.0;
    }
    out
}

/// Why an integrator stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// The error estimates satisfied the user tolerances.
    Converged,
    /// The iteration limit was reached before convergence.
    MaxIterations,
    /// The function-evaluation budget was exhausted before convergence.
    MaxEvaluations,
    /// Device memory was exhausted and no further subdivision was possible.
    MemoryExhausted,
    /// The run was cancelled cooperatively before convergence (service jobs
    /// observe their cancellation flag at iteration boundaries).  The estimate
    /// carried alongside is the best cumulative estimate at the point of
    /// cancellation.
    Cancelled,
}

impl Termination {
    /// Whether the run reported convergence to the requested accuracy.
    #[must_use]
    pub fn converged(&self) -> bool {
        matches!(self, Termination::Converged)
    }
}

/// The outcome of an integration run.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegrationResult {
    /// Estimate of the integral.
    pub estimate: f64,
    /// Estimate of the absolute error.
    pub error_estimate: f64,
    /// Why the integrator stopped.
    pub termination: Termination,
    /// Number of outer iterations executed (PAGANI/two-phase) or heap pops (Cuhre).
    pub iterations: usize,
    /// Total number of integrand evaluations.
    pub function_evaluations: u64,
    /// Total number of sub-regions ever created (Figure 9's metric).
    pub regions_generated: u64,
    /// Number of regions still active (unconverged) at termination.
    pub active_regions_final: usize,
    /// Wall-clock time of the integration call (excluding one-time setup, matching the
    /// paper's timing methodology).
    pub wall_time: Duration,
}

impl IntegrationResult {
    /// Whether the run reported convergence to the requested accuracy.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.termination.converged()
    }

    /// Estimated relative error `e/|v|`; infinite if the estimate is exactly zero.
    #[must_use]
    pub fn relative_error_estimate(&self) -> f64 {
        if self.estimate == 0.0 {
            if self.error_estimate == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.error_estimate / self.estimate.abs()
        }
    }

    /// True relative error against a known reference value; infinite if the reference
    /// is exactly zero and the estimate is not.
    #[must_use]
    pub fn true_relative_error(&self, reference: f64) -> f64 {
        if reference == 0.0 {
            if self.estimate == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.estimate - reference).abs() / reference.abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerances_from_digits() {
        let t = Tolerances::digits(3.0);
        assert!((t.rel - 1e-3).abs() < 1e-18);
        assert_eq!(t.abs, 1e-20);
        assert!((t.digits_requested() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn satisfied_by_uses_either_tolerance() {
        let t = Tolerances {
            rel: 1e-2,
            abs: 1e-6,
        };
        assert!(t.satisfied_by(10.0, 0.05)); // relative: 0.5% < 1%
        assert!(t.satisfied_by(0.0, 1e-7)); // absolute
        assert!(!t.satisfied_by(1.0, 0.5));
    }

    #[test]
    fn paper_sweep_matches_endpoints() {
        let sweep = paper_tolerance_sweep();
        assert_eq!(sweep.len(), 11);
        assert!((sweep[0] - 1e-3).abs() < 1e-18);
        assert!((sweep[10] - 1.024e-10).abs() < 1e-22);
        for pair in sweep.windows(2) {
            assert!(pair[1] < pair[0]);
        }
    }

    #[test]
    fn termination_converged_flag() {
        assert!(Termination::Converged.converged());
        assert!(!Termination::MaxIterations.converged());
        assert!(!Termination::MemoryExhausted.converged());
        assert!(!Termination::Cancelled.converged());
    }

    fn dummy(estimate: f64, error: f64) -> IntegrationResult {
        IntegrationResult {
            estimate,
            error_estimate: error,
            termination: Termination::Converged,
            iterations: 1,
            function_evaluations: 10,
            regions_generated: 1,
            active_regions_final: 0,
            wall_time: Duration::from_millis(1),
        }
    }

    #[test]
    fn relative_error_estimate_handles_zero_estimate() {
        assert_eq!(dummy(0.0, 0.0).relative_error_estimate(), 0.0);
        assert_eq!(dummy(0.0, 1.0).relative_error_estimate(), f64::INFINITY);
        assert!((dummy(2.0, 0.1).relative_error_estimate() - 0.05).abs() < 1e-15);
    }

    #[test]
    fn true_relative_error_handles_zero_reference() {
        assert_eq!(dummy(0.0, 0.0).true_relative_error(0.0), 0.0);
        assert_eq!(dummy(1.0, 0.0).true_relative_error(0.0), f64::INFINITY);
        assert!((dummy(1.05, 0.0).true_relative_error(1.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn rel_tol_for_digits_matches_powers_of_ten() {
        assert!((rel_tol_for_digits(5.0) - 1e-5).abs() < 1e-18);
    }
}
