//! The integrand abstraction shared by every integrator in the workspace.

/// A real-valued function over an `n`-dimensional axis-aligned domain.
///
/// Implementations must be [`Sync`]: PAGANI and the parallel baselines evaluate the
/// integrand from many simulated blocks concurrently, exactly as the CUDA kernels in
/// the paper evaluate it from many thread blocks.
pub trait Integrand: Sync {
    /// Dimensionality of the integration domain.
    fn dim(&self) -> usize;

    /// Evaluate the integrand at `x` (`x.len() == self.dim()`).
    fn eval(&self, x: &[f64]) -> f64;

    /// Human-readable name used in benchmark and experiment output.
    fn name(&self) -> String {
        format!("integrand-{}d", self.dim())
    }

    /// The integration bounds the integrand is normally evaluated on, as
    /// `(lower, upper)` per dimension.  Defaults to the unit hyper-cube, which is the
    /// domain of every integrand in the paper's test suite.
    fn default_bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (vec![0.0; self.dim()], vec![1.0; self.dim()])
    }
}

/// Adapter turning a closure into an [`Integrand`].
pub struct FnIntegrand<F> {
    dim: usize,
    name: String,
    f: F,
}

impl<F> FnIntegrand<F>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    /// Wrap `f` as an integrand over `dim` dimensions.
    pub fn new(dim: usize, f: F) -> Self {
        Self {
            dim,
            name: format!("closure-{dim}d"),
            f,
        }
    }

    /// Set the display name.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl<F> Integrand for FnIntegrand<F>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    fn dim(&self) -> usize {
        self.dim
    }

    fn eval(&self, x: &[f64]) -> f64 {
        (self.f)(x)
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

impl<T: Integrand + ?Sized> Integrand for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn eval(&self, x: &[f64]) -> f64 {
        (**self).eval(x)
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn default_bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (**self).default_bounds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_integrand_evaluates() {
        let f = FnIntegrand::new(2, |x: &[f64]| x[0] + 2.0 * x[1]).named("linear");
        assert_eq!(f.dim(), 2);
        assert_eq!(f.eval(&[1.0, 2.0]), 5.0);
        assert_eq!(f.name(), "linear");
    }

    #[test]
    fn default_bounds_are_unit_cube() {
        let f = FnIntegrand::new(3, |_: &[f64]| 0.0);
        let (lo, hi) = f.default_bounds();
        assert_eq!(lo, vec![0.0; 3]);
        assert_eq!(hi, vec![1.0; 3]);
    }

    #[test]
    fn reference_forwarding_works() {
        let f = FnIntegrand::new(1, |x: &[f64]| x[0]);
        let r: &dyn Integrand = &f;
        assert_eq!((&r).dim(), 1);
        assert_eq!((&r).eval(&[0.5]), 0.5);
    }

    #[test]
    fn default_name_mentions_dimension() {
        struct Plain;
        impl Integrand for Plain {
            fn dim(&self) -> usize {
                4
            }
            fn eval(&self, _: &[f64]) -> f64 {
                1.0
            }
        }
        assert_eq!(Plain.name(), "integrand-4d");
    }
}
