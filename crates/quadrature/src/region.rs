//! Axis-aligned hyper-rectangular sub-regions of the integration domain.

/// An axis-aligned hyper-rectangle `[lo_i, hi_i]` in `n` dimensions.
///
/// Regions are the unit of adaptivity for every integrator in this workspace: Cuhre
/// keeps them in a heap, the two-phase method distributes them over processors, and
/// PAGANI keeps a flat, structure-of-arrays list of them (see `pagani-core`).  This
/// owned representation is used at API boundaries and in the sequential baselines; the
/// hot PAGANI kernels work on the flat arrays directly.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Region {
    /// Create a region from per-dimension lower and upper bounds.
    ///
    /// # Panics
    /// Panics if the bounds have different lengths, are empty, or any `lo_i > hi_i`.
    #[must_use]
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "bounds must have the same dimension");
        assert!(!lo.is_empty(), "regions must have at least one dimension");
        for (i, (&l, &h)) in lo.iter().zip(&hi).enumerate() {
            assert!(
                l <= h,
                "lower bound {l} exceeds upper bound {h} in dimension {i}"
            );
        }
        Self { lo, hi }
    }

    /// The unit hyper-cube `[0,1]^dim`, the domain of the paper's test suite.
    #[must_use]
    pub fn unit_cube(dim: usize) -> Self {
        Self::new(vec![0.0; dim], vec![1.0; dim])
    }

    /// Dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Per-dimension lower bounds.
    #[must_use]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Per-dimension upper bounds.
    #[must_use]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Centre point.
    #[must_use]
    pub fn center(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| 0.5 * (l + h))
            .collect()
    }

    /// Per-dimension half-widths.
    #[must_use]
    pub fn halfwidths(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| 0.5 * (h - l))
            .collect()
    }

    /// Volume (product of edge lengths).
    #[must_use]
    pub fn volume(&self) -> f64 {
        self.lo.iter().zip(&self.hi).map(|(&l, &h)| h - l).product()
    }

    /// Length of the edge along `axis`.
    #[must_use]
    pub fn extent(&self, axis: usize) -> f64 {
        self.hi[axis] - self.lo[axis]
    }

    /// Whether `x` lies inside the region (inclusive bounds).
    #[must_use]
    pub fn contains(&self, x: &[f64]) -> bool {
        x.len() == self.dim()
            && x.iter()
                .zip(self.lo.iter().zip(&self.hi))
                .all(|(&xi, (&l, &h))| xi >= l && xi <= h)
    }

    /// Split the region into two equal halves along `axis`, returning
    /// `(lower_half, upper_half)`.
    ///
    /// # Panics
    /// Panics if `axis >= self.dim()`.
    #[must_use]
    pub fn split(&self, axis: usize) -> (Region, Region) {
        assert!(axis < self.dim(), "split axis {axis} out of range");
        let mid = 0.5 * (self.lo[axis] + self.hi[axis]);
        let mut left = self.clone();
        let mut right = self.clone();
        left.hi[axis] = mid;
        right.lo[axis] = mid;
        (left, right)
    }

    /// Partition the region into `d^dim` equal sub-regions by cutting every axis into
    /// `d` equal parts — PAGANI's initial uniform split (Algorithm 2, line 4).
    ///
    /// Sub-regions are returned in row-major order of their grid coordinates.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    #[must_use]
    pub fn uniform_split(&self, d: usize) -> Vec<Region> {
        assert!(d > 0, "uniform split requires at least one part per axis");
        let dim = self.dim();
        let total = d.checked_pow(dim as u32).expect("d^dim overflows usize");
        let mut out = Vec::with_capacity(total);
        let mut coords = vec![0usize; dim];
        for _ in 0..total {
            let mut lo = Vec::with_capacity(dim);
            let mut hi = Vec::with_capacity(dim);
            for (axis, &c) in coords.iter().enumerate() {
                let step = (self.hi[axis] - self.lo[axis]) / d as f64;
                lo.push(self.lo[axis] + c as f64 * step);
                hi.push(if c + 1 == d {
                    self.hi[axis]
                } else {
                    self.lo[axis] + (c + 1) as f64 * step
                });
            }
            out.push(Region::new(lo, hi));
            // Increment mixed-radix counter.
            for c in coords.iter_mut().rev() {
                *c += 1;
                if *c < d {
                    break;
                }
                *c = 0;
            }
        }
        out
    }

    /// Map a point from the unit cube into this region.
    #[must_use]
    pub fn from_unit(&self, u: &[f64]) -> Vec<f64> {
        u.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(&ui, (&l, &h))| l + ui * (h - l))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unit_cube_properties() {
        let r = Region::unit_cube(4);
        assert_eq!(r.dim(), 4);
        assert_eq!(r.volume(), 1.0);
        assert_eq!(r.center(), vec![0.5; 4]);
        assert_eq!(r.halfwidths(), vec![0.5; 4]);
    }

    #[test]
    #[should_panic(expected = "same dimension")]
    fn mismatched_bounds_panic() {
        let _ = Region::new(vec![0.0], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn inverted_bounds_panic() {
        let _ = Region::new(vec![1.0, 0.0], vec![0.5, 1.0]);
    }

    #[test]
    fn split_halves_volume() {
        let r = Region::new(vec![0.0, -1.0], vec![2.0, 3.0]);
        let (a, b) = r.split(1);
        assert_eq!(a.volume() + b.volume(), r.volume());
        assert_eq!(a.hi()[1], 1.0);
        assert_eq!(b.lo()[1], 1.0);
        assert_eq!(a.lo()[0], 0.0);
        assert_eq!(a.hi()[0], 2.0);
    }

    #[test]
    fn contains_checks_bounds_and_dim() {
        let r = Region::unit_cube(2);
        assert!(r.contains(&[0.0, 1.0]));
        assert!(!r.contains(&[1.1, 0.5]));
        assert!(!r.contains(&[0.5]));
    }

    #[test]
    fn uniform_split_counts_and_volume() {
        let r = Region::unit_cube(3);
        let parts = r.uniform_split(2);
        assert_eq!(parts.len(), 8);
        let total: f64 = parts.iter().map(Region::volume).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_split_of_one_returns_whole_region() {
        let r = Region::new(vec![-1.0], vec![5.0]);
        let parts = r.uniform_split(1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], r);
    }

    #[test]
    fn uniform_split_covers_without_gaps() {
        let r = Region::unit_cube(2);
        let parts = r.uniform_split(4);
        // Every test point must be inside exactly one part (up to shared boundaries).
        for &x in &[0.05, 0.3, 0.62, 0.99] {
            for &y in &[0.01, 0.55, 0.76] {
                let inside = parts.iter().filter(|p| p.contains(&[x, y])).count();
                assert!(inside >= 1, "point ({x},{y}) not covered");
            }
        }
    }

    #[test]
    fn from_unit_maps_corners() {
        let r = Region::new(vec![2.0, -1.0], vec![4.0, 1.0]);
        assert_eq!(r.from_unit(&[0.0, 0.0]), vec![2.0, -1.0]);
        assert_eq!(r.from_unit(&[1.0, 1.0]), vec![4.0, 1.0]);
        assert_eq!(r.from_unit(&[0.5, 0.5]), r.center());
    }

    #[test]
    fn extent_returns_edge_length() {
        let r = Region::new(vec![0.0, 1.0], vec![3.0, 1.5]);
        assert_eq!(r.extent(0), 3.0);
        assert_eq!(r.extent(1), 0.5);
    }

    proptest! {
        #[test]
        fn prop_split_preserves_volume(
            dim in 1usize..6,
            axis_seed in 0usize..100,
            width in 0.1f64..10.0,
        ) {
            let lo = vec![-1.0; dim];
            let hi = vec![-1.0 + width; dim];
            let r = Region::new(lo, hi);
            let axis = axis_seed % dim;
            let (a, b) = r.split(axis);
            let rel = ((a.volume() + b.volume()) - r.volume()).abs() / r.volume();
            prop_assert!(rel < 1e-12);
        }

        #[test]
        fn prop_uniform_split_preserves_volume(dim in 1usize..4, d in 1usize..5) {
            let r = Region::new(vec![0.5; dim], vec![2.5; dim]);
            let parts = r.uniform_split(d);
            prop_assert_eq!(parts.len(), d.pow(dim as u32));
            let total: f64 = parts.iter().map(Region::volume).sum();
            let rel = (total - r.volume()).abs() / r.volume();
            prop_assert!(rel < 1e-10);
        }

        #[test]
        fn prop_from_unit_stays_inside(
            dim in 1usize..5,
            u in proptest::collection::vec(0.0f64..=1.0, 1..5),
        ) {
            let dim = dim.min(u.len());
            let r = Region::new(vec![-3.0; dim], vec![7.0; dim]);
            let x = r.from_unit(&u[..dim]);
            prop_assert!(r.contains(&x));
        }
    }
}
