//! Shared harness for the figure-reproduction benchmarks.
//!
//! Every figure of the paper's evaluation has a `[[bench]]` target in this crate that
//! prints the same rows/series the figure plots.  The helpers here keep the targets
//! small: device construction, the tolerance sweep, one `run_*` function per method
//! and a common row printer.
//!
//! Environment knobs (all optional):
//!
//! * `PAGANI_BENCH_MAX_DIGITS` — highest requested digits-of-precision in the sweeps
//!   (default 5; the paper goes to 10–11).
//! * `PAGANI_BENCH_FULL` — set to `1` to run every integrand the figure uses instead
//!   of the fast default subset.
//! * `PAGANI_BENCH_DEVICE_MB` — simulated device memory in MiB (default 1024).  The
//!   paper's V100 has 16384; smaller values move the memory-exhaustion effects to
//!   lower precision but keep host RSS reasonable.
//! * `PAGANI_BENCH_MAX_EVALS` — evaluation budget for Cuhre/QMC sweeps (default 5·10⁷;
//!   the paper allows 10⁹ for Cuhre).

#![warn(missing_docs)]
#![warn(unreachable_pub)]
#![forbid(unsafe_code)]

use std::time::Duration;

use pagani_baselines::{Cuhre, CuhreConfig, Qmc, QmcConfig, TwoPhase, TwoPhaseConfig};
use pagani_core::{HeuristicFiltering, Pagani, PaganiConfig, PaganiOutput};
use pagani_device::{Device, DeviceConfig};
use pagani_integrands::paper::PaperIntegrand;
use pagani_quadrature::{IntegrationResult, Tolerances};

/// Read an environment variable as a number, falling back to `default`.
fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Whether the full (paper-scale) sweep was requested.
#[must_use]
pub fn full_sweep() -> bool {
    std::env::var("PAGANI_BENCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The digits-of-precision sweep: 3 up to `PAGANI_BENCH_MAX_DIGITS` (default 5).
#[must_use]
pub fn digits_sweep() -> Vec<f64> {
    let max: u32 = env_or("PAGANI_BENCH_MAX_DIGITS", 5);
    (3..=max.max(3)).map(f64::from).collect()
}

/// The simulated device used by all figure benchmarks.
#[must_use]
pub fn bench_device() -> Device {
    let mib: usize = env_or("PAGANI_BENCH_DEVICE_MB", 1024);
    Device::new(DeviceConfig::v100_like().with_memory_capacity(mib * (1 << 20)))
}

/// Evaluation budget for the sequential and QMC baselines.
#[must_use]
pub fn baseline_eval_budget() -> u64 {
    env_or("PAGANI_BENCH_MAX_EVALS", 50_000_000)
}

/// Run PAGANI at the requested digits (handles the sign-oscillation flag for f1).
#[must_use]
pub fn run_pagani(device: &Device, integrand: &PaperIntegrand, digits: f64) -> PaganiOutput {
    let mut config = PaganiConfig::new(Tolerances::digits(digits));
    if integrand.is_sign_oscillating() {
        config = config.without_rel_err_filtering();
    }
    Pagani::new(device.clone(), config).integrate(integrand)
}

/// Run PAGANI with an explicit heuristic-filtering mode (Figure 8 ablation).
#[must_use]
pub fn run_pagani_with_filtering(
    device: &Device,
    integrand: &PaperIntegrand,
    digits: f64,
    mode: HeuristicFiltering,
) -> PaganiOutput {
    let mut config = PaganiConfig::new(Tolerances::digits(digits)).with_heuristic_filtering(mode);
    if integrand.is_sign_oscillating() {
        config = config.without_rel_err_filtering();
    }
    Pagani::new(device.clone(), config).integrate(integrand)
}

/// Run the two-phase baseline at the requested digits.
///
/// The phase-I region target and per-processor phase-II budgets are scaled down from
/// the paper's V100 figures (2¹⁵ regions / 2048-region heaps) by the same factor as
/// the default device memory, so that a full sweep stays tractable on a CPU; override
/// with `PAGANI_BENCH_TWO_PHASE_REGIONS` / `PAGANI_BENCH_TWO_PHASE_HEAP` to restore
/// the paper's configuration.
#[must_use]
pub fn run_two_phase(
    device: &Device,
    integrand: &PaperIntegrand,
    digits: f64,
) -> IntegrationResult {
    let config = TwoPhaseConfig {
        phase1_region_target: env_or("PAGANI_BENCH_TWO_PHASE_REGIONS", 2048),
        phase2_heap_capacity: env_or("PAGANI_BENCH_TWO_PHASE_HEAP", 512),
        phase2_max_evaluations: env_or("PAGANI_BENCH_TWO_PHASE_EVALS", 500_000),
        ..TwoPhaseConfig::new(Tolerances::digits(digits))
    };
    TwoPhase::new(device.clone(), config).integrate(integrand)
}

/// Run sequential Cuhre at the requested digits with the benchmark evaluation budget.
#[must_use]
pub fn run_cuhre(integrand: &PaperIntegrand, digits: f64) -> IntegrationResult {
    Cuhre::new(
        CuhreConfig::new(Tolerances::digits(digits)).with_max_evaluations(baseline_eval_budget()),
    )
    .integrate(integrand)
}

/// Run the QMC baseline at the requested digits with the benchmark evaluation budget.
#[must_use]
pub fn run_qmc(device: &Device, integrand: &PaperIntegrand, digits: f64) -> IntegrationResult {
    Qmc::new(
        device.clone(),
        QmcConfig::new(Tolerances::digits(digits)).with_max_evaluations(baseline_eval_budget()),
    )
    .integrate(integrand)
}

/// Milliseconds as a float, for printing.
#[must_use]
pub fn millis(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1e3
}

/// Print the standard experiment banner.
pub fn banner(figure: &str, description: &str) {
    println!("==============================================================================");
    println!("{figure}: {description}");
    println!(
        "  sweep: digits {:?}   device memory: {} MiB   full sweep: {}",
        digits_sweep(),
        env_or::<usize>("PAGANI_BENCH_DEVICE_MB", 1024),
        full_sweep()
    );
    println!("==============================================================================");
}

/// A single result row of a figure table.
pub fn print_result_row(
    integrand: &PaperIntegrand,
    method: &str,
    digits: f64,
    result: &IntegrationResult,
) {
    println!(
        "{:<8} {:<12} digits {:>4}  time {:>10.1} ms  est.rel.err {:>9.2e}  true.rel.err {:>9.2e}  regions {:>10}  converged {}",
        integrand.label(),
        method,
        digits,
        millis(result.wall_time),
        result.relative_error_estimate(),
        result.true_relative_error(integrand.reference_value()),
        result.regions_generated,
        result.converged(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_sweep_starts_at_three() {
        let sweep = digits_sweep();
        assert_eq!(sweep[0], 3.0);
        assert!(sweep.len() >= 3);
    }

    #[test]
    fn bench_device_has_configured_memory() {
        let device = bench_device();
        assert!(device.config().memory_capacity >= 1 << 20);
    }

    #[test]
    fn harness_runs_every_method_on_a_small_case() {
        let device = Device::test_small();
        let f = PaperIntegrand::f4(3);
        let p = run_pagani(&device, &f, 3.0);
        assert!(p.result.converged());
        let c = run_cuhre(&f, 3.0);
        assert!(c.converged());
        let t = run_two_phase(&device, &f, 3.0);
        assert!(t.estimate.is_finite());
        let q = run_qmc(&device, &f, 3.0);
        assert!(q.estimate.is_finite());
    }
}
