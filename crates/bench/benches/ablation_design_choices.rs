//! Ablations of the design choices called out in DESIGN.md beyond Figure 8:
//! the two-level error refinement and the granularity of the initial uniform split.

use pagani_bench::{banner, bench_device, millis};
use pagani_core::{Pagani, PaganiConfig};
use pagani_integrands::paper::PaperIntegrand;
use pagani_quadrature::Tolerances;

fn main() {
    banner(
        "Ablations",
        "two-level error refinement and initial-split granularity",
    );
    let device = bench_device();
    let integrand = PaperIntegrand::f4(5);
    let reference = integrand.reference_value();
    let tolerances = Tolerances::digits(5.0);

    println!("-- two-level error refinement (5D f4 at 5 digits) --");
    for (name, enabled) in [("two-level ON (paper)", true), ("two-level OFF", false)] {
        let config = PaganiConfig {
            two_level_errors: enabled,
            ..PaganiConfig::new(tolerances)
        };
        let out = Pagani::new(device.clone(), config).integrate(&integrand);
        println!(
            "  {:<22} time {:>9.1} ms  regions {:>10}  est.rel.err {:>9.2e}  true.rel.err {:>9.2e}  converged {}",
            name,
            millis(out.result.wall_time),
            out.result.regions_generated,
            out.result.relative_error_estimate(),
            out.result.true_relative_error(reference),
            out.result.converged(),
        );
    }

    println!("\n-- initial uniform split granularity d (5D f4 at 5 digits) --");
    for d in [2usize, 4, 6, 8] {
        let config = PaganiConfig::new(tolerances).with_splits_per_axis(d);
        let out = Pagani::new(device.clone(), config).integrate(&integrand);
        println!(
            "  d = {d}: initial regions {:>8}  time {:>9.1} ms  iterations {:>4}  total regions {:>10}  converged {}",
            d.pow(5),
            millis(out.result.wall_time),
            out.result.iterations,
            out.result.regions_generated,
            out.result.converged(),
        );
    }
}
