//! Throughput of the batch execution engine: integrals per second on a mixed
//! Genz workload, `integrate_batch` vs the equivalent sequential loop.
//!
//! The batch engine wins on two axes, and this bench exposes both:
//!
//! * **Pool utilisation** — a single job alternates kernel launches with
//!   serial host phases, leaving an 8-worker device partly idle; concurrent
//!   jobs fill those gaps (visible on multi-core hosts).
//! * **Buffer reuse** — each batch worker recycles region lists, estimate
//!   arrays and masks across iterations and jobs through its scratch arena,
//!   where the sequential loop reallocates them per generation (visible even
//!   on one core).
//!
//! One bench iteration runs the whole 16-job batch, so `mean_ns / 16` is the
//! per-integral cost and `16e9 / mean_ns` the integrals-per-second rate.  Run
//! with `--save-json <path>` (or `CRITERION_SAVE_JSON`) to record the numbers;
//! the CI bench-smoke job tracks this group as the perf trajectory.
//!
//! The `dispatch` group adds the multi-device angle: a *skewed* 16-job batch
//! (heavy 5-D jobs alternating with trivial 2-D ones) over two devices, under
//! round-robin vs cost-balanced dispatch.  Round-robin piles every heavy job
//! onto one device; cost-balanced splits them, so on a multi-core host the
//! balanced makespan is roughly half the round-robin one.  (On a single-core
//! runner the two converge — total work is identical — so CI gates the
//! *scheduling plan* in unit tests and tracks the wall-clock here.)

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pagani_core::{BatchJob, BatchRunner, DispatchMode, MultiDevicePagani, Pagani, PaganiConfig};
use pagani_device::{Device, DeviceConfig};
use pagani_integrands::paper::PaperIntegrand;
use pagani_quadrature::{Integrand, Tolerances};

/// The 16-job mixed Genz workload: four single-sign families at four
/// dimensionalities each, the shape of a request mix a batch service would see.
fn mixed_workload() -> Vec<Arc<PaperIntegrand>> {
    let mut jobs = Vec::with_capacity(16);
    for dim in [2usize, 3, 4, 5] {
        jobs.push(Arc::new(PaperIntegrand::f3(dim)));
        jobs.push(Arc::new(PaperIntegrand::f4(dim)));
        jobs.push(Arc::new(PaperIntegrand::f5(dim)));
        jobs.push(Arc::new(PaperIntegrand::f7(dim)));
    }
    jobs
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);
    let device = Device::new(
        DeviceConfig::v100_like()
            .with_worker_threads(8)
            .with_memory_capacity(256 << 20),
    );
    let config = PaganiConfig::test_small(Tolerances::rel(1e-3));
    let workload = mixed_workload();

    // The baseline a service without the batch engine would run: one job at a
    // time through the plain single-shot API.
    let sequential = Pagani::new(device.clone(), config.clone());
    group.bench_function("sequential_loop_16_jobs", |b| {
        b.iter(|| {
            let total: f64 = workload
                .iter()
                .map(|f| sequential.integrate(f.as_ref()).result.estimate)
                .sum();
            black_box(total)
        })
    });

    let runner = BatchRunner::new(device.clone(), config.clone());
    let jobs: Vec<BatchJob> = workload
        .iter()
        .map(|f| BatchJob::shared(f.clone() as Arc<dyn Integrand + Send + Sync>))
        .collect();
    group.bench_function("batch_16_jobs", |b| {
        b.iter(|| {
            let total: f64 = runner.run(&jobs).iter().map(|o| o.result.estimate).sum();
            black_box(total)
        })
    });
    group.finish();
}

/// The 16-job skewed workload: heavy jobs (5-D Gaussian) on even indices,
/// trivial jobs (2-D corner peak) on odd ones — the adversarial mix for
/// round-robin sharding over two devices, which piles every heavy job onto
/// device 0 while device 1 idles.  Cost-balanced dispatch weighs jobs with
/// the (dimension, tolerance) cost model and splits the heavy half across
/// both devices.
fn skewed_workload() -> Vec<BatchJob> {
    (0..16)
        .map(|i| {
            if i % 2 == 0 {
                BatchJob::new(PaperIntegrand::f4(5))
            } else {
                BatchJob::new(PaperIntegrand::f3(2))
            }
        })
        .collect()
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    group.sample_size(10);
    // Two workers per device: narrower than the skew, so on a multi-core host
    // round-robin's single busy device can only use half the cores while the
    // other device idles — exactly the imbalance cost-balanced dispatch
    // removes.  (On a single-core host the modes converge; see module docs.)
    let make_devices = || -> Vec<Device> {
        (0..2)
            .map(|_| {
                Device::new(
                    DeviceConfig::v100_like()
                        .with_worker_threads(2)
                        .with_memory_capacity(128 << 20),
                )
            })
            .collect()
    };
    let config = PaganiConfig::test_small(Tolerances::rel(1e-4));
    let jobs = skewed_workload();

    let round_robin = MultiDevicePagani::new(make_devices(), config.clone())
        .with_dispatch(DispatchMode::RoundRobin);
    group.bench_function("round_robin_skewed_16_jobs", |b| {
        b.iter(|| {
            let total: f64 = round_robin
                .integrate_batch(&jobs)
                .iter()
                .map(|o| o.result.estimate)
                .sum();
            black_box(total)
        })
    });

    let balanced =
        MultiDevicePagani::new(make_devices(), config).with_dispatch(DispatchMode::CostBalanced);
    group.bench_function("cost_balanced_skewed_16_jobs", |b| {
        b.iter(|| {
            let total: f64 = balanced
                .integrate_batch(&jobs)
                .iter()
                .map(|o| o.result.estimate)
                .sum();
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(throughput, bench_throughput, bench_dispatch);
criterion_main!(throughput);
