//! Throughput of the batch execution engine: integrals per second on a mixed
//! Genz workload, `integrate_batch` vs the equivalent sequential loop.
//!
//! The batch engine wins on two axes, and this bench exposes both:
//!
//! * **Pool utilisation** — a single job alternates kernel launches with
//!   serial host phases, leaving an 8-worker device partly idle; concurrent
//!   jobs fill those gaps (visible on multi-core hosts).
//! * **Buffer reuse** — each batch worker recycles region lists, estimate
//!   arrays and masks across iterations and jobs through its scratch arena,
//!   where the sequential loop reallocates them per generation (visible even
//!   on one core).
//!
//! One bench iteration runs the whole 16-job batch, so `mean_ns / 16` is the
//! per-integral cost and `16e9 / mean_ns` the integrals-per-second rate.  Run
//! with `--save-json <path>` (or `CRITERION_SAVE_JSON`) to record the numbers;
//! the CI bench-smoke job tracks this group as the perf trajectory.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pagani_core::{BatchJob, BatchRunner, Pagani, PaganiConfig};
use pagani_device::{Device, DeviceConfig};
use pagani_integrands::paper::PaperIntegrand;
use pagani_quadrature::{Integrand, Tolerances};

/// The 16-job mixed Genz workload: four single-sign families at four
/// dimensionalities each, the shape of a request mix a batch service would see.
fn mixed_workload() -> Vec<Arc<PaperIntegrand>> {
    let mut jobs = Vec::with_capacity(16);
    for dim in [2usize, 3, 4, 5] {
        jobs.push(Arc::new(PaperIntegrand::f3(dim)));
        jobs.push(Arc::new(PaperIntegrand::f4(dim)));
        jobs.push(Arc::new(PaperIntegrand::f5(dim)));
        jobs.push(Arc::new(PaperIntegrand::f7(dim)));
    }
    jobs
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);
    let device = Device::new(
        DeviceConfig::v100_like()
            .with_worker_threads(8)
            .with_memory_capacity(256 << 20),
    );
    let config = PaganiConfig::test_small(Tolerances::rel(1e-3));
    let workload = mixed_workload();

    // The baseline a service without the batch engine would run: one job at a
    // time through the plain single-shot API.
    let sequential = Pagani::new(device.clone(), config.clone());
    group.bench_function("sequential_loop_16_jobs", |b| {
        b.iter(|| {
            let total: f64 = workload
                .iter()
                .map(|f| sequential.integrate(f.as_ref()).result.estimate)
                .sum();
            black_box(total)
        })
    });

    let runner = BatchRunner::new(device.clone(), config.clone());
    let jobs: Vec<BatchJob> = workload
        .iter()
        .map(|f| BatchJob::shared(f.clone() as Arc<dyn Integrand + Send + Sync>))
        .collect();
    group.bench_function("batch_16_jobs", |b| {
        b.iter(|| {
            let total: f64 = runner.run(&jobs).iter().map(|o| o.result.estimate).sum();
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(throughput, bench_throughput);
criterion_main!(throughput);
