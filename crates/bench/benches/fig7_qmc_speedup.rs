//! Figure 7: PAGANI speedup over the quasi-Monte Carlo baseline.
//!
//! The paper sweeps 3D f3, 5D f5, 6D f6 and the 8-D members f1, f3, f5, f7, f8; the
//! fast default here keeps 3D f3, 5D f5, 8D f3 and 8D f7 and the full sweep adds the
//! rest.  For 8D f1 (the sign-oscillating case) the paper reports QMC reaching more
//! digits than PAGANI — the same flag is printed here when it happens.

use pagani_bench::{banner, bench_device, digits_sweep, full_sweep, millis, run_pagani, run_qmc};
use pagani_integrands::paper::PaperIntegrand;

fn main() {
    banner(
        "Figure 7",
        "PAGANI speedup over the randomized QMC baseline",
    );
    let mut cases = vec![
        PaperIntegrand::f3(3),
        PaperIntegrand::f5(5),
        PaperIntegrand::f3(8),
        PaperIntegrand::f7(8),
    ];
    if full_sweep() {
        cases.push(PaperIntegrand::f1(8));
        cases.push(PaperIntegrand::f5(8));
        cases.push(PaperIntegrand::f6());
        cases.push(PaperIntegrand::f8(8));
    }
    let device = bench_device();

    println!(
        "{:<8} {:>6} {:>14} {:>14} {:>12}",
        "case", "digits", "QMC[ms]", "PAGANI[ms]", "speedup"
    );
    for integrand in &cases {
        for digits in digits_sweep() {
            let qmc = run_qmc(&device, integrand, digits);
            let pagani = run_pagani(&device, integrand, digits);
            let speedup = millis(qmc.wall_time) / millis(pagani.result.wall_time).max(1e-3);
            let note = match (pagani.result.converged(), qmc.converged()) {
                (true, false) => "  [only PAGANI converged]",
                (false, true) => "  [only QMC converged — the paper's 8D f1 behaviour]",
                _ => "",
            };
            println!(
                "{:<8} {:>6} {:>14.1} {:>14.1} {:>11.1}x{}",
                integrand.label(),
                digits,
                millis(qmc.wall_time),
                millis(pagani.result.wall_time),
                speedup,
                note,
            );
        }
        println!();
    }
}
