//! Figure 5: execution-time comparison of Cuhre, PAGANI and the two-phase method.
//!
//! Same integrand panels as Figure 4 (5D f4, 6D f6, 8D f7); each row reports the wall
//! time of one method at one requested precision.  Absolute numbers depend on the host
//! CPU rather than a V100, but the shapes — PAGANI and two-phase close at low
//! precision, Cuhre's time exploding with digits, two-phase dropping out early — are
//! the comparison the paper plots.

use pagani_bench::{
    banner, bench_device, digits_sweep, full_sweep, millis, run_cuhre, run_pagani, run_two_phase,
};
use pagani_integrands::paper::PaperIntegrand;

fn main() {
    banner(
        "Figure 5",
        "execution time vs requested digits (5D f4, 6D f6, 8D f7)",
    );
    let mut cases = vec![
        PaperIntegrand::f4(5),
        PaperIntegrand::f6(),
        PaperIntegrand::f7(8),
    ];
    if full_sweep() {
        cases.push(PaperIntegrand::f3(8));
    }
    let device = bench_device();

    println!(
        "{:<8} {:>6} {:>14} {:>14} {:>14}",
        "case", "digits", "cuhre[ms]", "PAGANI[ms]", "two-phase[ms]"
    );
    for integrand in &cases {
        for digits in digits_sweep() {
            let cuhre = run_cuhre(integrand, digits);
            let pagani = run_pagani(&device, integrand, digits);
            let two_phase = run_two_phase(&device, integrand, digits);
            println!(
                "{:<8} {:>6} {:>14.1} {:>14.1} {:>14.1}   (converged: cuhre {}, pagani {}, two-phase {})",
                integrand.label(),
                digits,
                millis(cuhre.wall_time),
                millis(pagani.result.wall_time),
                millis(two_phase.wall_time),
                cuhre.converged(),
                pagani.result.converged(),
                two_phase.converged(),
            );
        }
        println!();
    }
}
