//! Robustness sweep over the Genz (1984) random integrand families.
//!
//! §4.2 of the paper discusses the standard testing methodology of timing randomized
//! instances of the six Genz families; because this repository's Genz implementation
//! carries analytic reference values for arbitrary parameters, the same sweep can also
//! verify accuracy.  For every family a handful of random instances is integrated with
//! PAGANI and the success rate and worst true relative error are reported.

use pagani_bench::{banner, bench_device};
use pagani_core::{Pagani, PaganiConfig};
use pagani_integrands::genz::{GenzFamily, GenzIntegrand};
use pagani_quadrature::Tolerances;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "Genz families",
        "random-instance robustness sweep (PAGANI, 4 digits, 4D)",
    );
    let device = bench_device();
    let tolerances = Tolerances::digits(4.0);
    let instances_per_family = 4;
    let dim = 4;
    let mut rng = StdRng::seed_from_u64(20_210_615);

    for family in GenzFamily::all() {
        let mut converged = 0usize;
        let mut worst_true_error = 0.0f64;
        for _ in 0..instances_per_family {
            let integrand = GenzIntegrand::random(family, dim, &mut rng);
            let mut config = PaganiConfig::new(tolerances);
            if matches!(family, GenzFamily::Oscillatory) {
                config = config.without_rel_err_filtering();
            }
            let out = Pagani::new(device.clone(), config).integrate(&integrand);
            if out.result.converged() {
                converged += 1;
            }
            let true_error = out.result.true_relative_error(integrand.reference_value());
            worst_true_error = worst_true_error.max(true_error);
        }
        println!(
            "{:<14?} converged {converged}/{instances_per_family}   worst true rel.err {:.2e}",
            family, worst_true_error
        );
    }
}
