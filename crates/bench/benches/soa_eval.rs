//! Scalar-path vs batched structure-of-arrays evaluation.
//!
//! The backend redesign replaced `evaluate_all_in`'s per-region closure
//! launches (one boxed `RuleEstimate` per block, collected into a fresh `Vec`
//! every generation) with one batched `launch_batch` over packed
//! centre/half-width buffers.  This group pins the payoff: `scalar_*`
//! replicates the pre-refactor path — per-block locked slots collected into a
//! `Vec` after the launch — `batched_*` is the live SoA path, both on the
//! same 8-worker device over an identical generation.  The workload is deliberately launch-bound (2-D rule,
//! 17 points per region, thousands of regions) so the per-block bookkeeping —
//! not the integrand — dominates, which is exactly the regime where the flat
//! lane convention earns its keep.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Mutex;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pagani_core::evaluate::evaluate_all_in;
use pagani_core::region_list::RegionList;
use pagani_core::ScratchArena;
use pagani_device::{Device, DeviceConfig};
use pagani_quadrature::{EvalScratch, FnIntegrand, GenzMalik, Integrand, Region, RuleEstimate};

/// The pre-refactor per-block scratch: rule workspace plus centre/half-width
/// staging buffers, cached per worker thread exactly as the old path did.
struct BlockScratch {
    scratch: EvalScratch,
    center: Vec<f64>,
    halfwidth: Vec<f64>,
}

thread_local! {
    static BLOCK_SCRATCH: RefCell<HashMap<usize, BlockScratch>> = RefCell::new(HashMap::new());
}

fn with_block_scratch<R>(dim: usize, body: impl FnOnce(&mut BlockScratch) -> R) -> R {
    let mut block = BLOCK_SCRATCH
        .with(|cache| cache.borrow_mut().remove(&dim))
        .unwrap_or_else(|| BlockScratch {
            scratch: EvalScratch::new(dim),
            center: vec![0.0; dim],
            halfwidth: vec![0.0; dim],
        });
    let out = body(&mut block);
    BLOCK_SCRATCH.with(|cache| cache.borrow_mut().insert(dim, block));
    out
}

/// Faithful replica of the pre-refactor `evaluate_all_in`: one closure launch
/// per generation returning a `Vec` of estimates, unpacked on the host.
fn evaluate_all_scalar<F: Integrand + ?Sized>(
    device: &Device,
    rule: &GenzMalik,
    integrand: &F,
    list: &RegionList,
    arena: &ScratchArena,
) -> f64 {
    let dim = list.dim();
    // One locked slot per block, exactly what the old per-block-return shim
    // allocated internally: the cost being pinned here.
    let slots: Vec<Mutex<Option<RuleEstimate>>> =
        (0..list.len()).map(|_| Mutex::new(None)).collect();
    device
        .launch("soa_eval.scalar", list.len(), |ctx| {
            let est = with_block_scratch(dim, |block| {
                list.centered_view(ctx.block_idx, &mut block.center, &mut block.halfwidth);
                rule.evaluate_centered(
                    integrand,
                    &block.center,
                    &block.halfwidth,
                    &mut block.scratch,
                )
            });
            *slots[ctx.block_idx]
                .lock()
                .expect("slot lock never poisons") = Some(est);
        })
        .expect("scalar launch is never empty");
    let estimates: Vec<RuleEstimate> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock never poisons")
                .expect("every launched block produces a value")
        })
        .collect();
    let mut integrals = arena.take_f64(estimates.len());
    let mut errors = arena.take_f64(estimates.len());
    let mut split_axes = arena.take_axes(estimates.len());
    for est in estimates {
        integrals.push(est.integral);
        errors.push(est.error);
        split_axes.push(est.split_axis);
    }
    let total = integrals.iter().sum();
    arena.put_f64(integrals);
    arena.put_f64(errors);
    arena.put_axes(split_axes);
    total
}

fn bench_soa_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("soa_eval");
    group.sample_size(30);
    let device = Device::new(DeviceConfig::v100_like().with_worker_threads(8));
    let dim = 2usize;
    let rule = GenzMalik::new(dim);
    let integrand = FnIntegrand::new(dim, |x: &[f64]| x[0] * x[1] + 1.0);
    let list = RegionList::initial_split(&Region::unit_cube(dim), 64, device.memory()).unwrap();
    assert_eq!(list.len(), 4096);
    let arena = ScratchArena::new();

    group.bench_function("scalar_4096_2d", |b| {
        b.iter(|| {
            black_box(evaluate_all_scalar(
                &device, &rule, &integrand, &list, &arena,
            ))
        })
    });
    group.bench_function("batched_4096_2d", |b| {
        b.iter(|| {
            let eval = evaluate_all_in(&device, &rule, &integrand, &list, &arena)
                .expect("batched launch is never empty");
            let total: f64 = eval.integrals.iter().sum();
            eval.retire(&arena);
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(soa_eval, bench_soa_eval);
criterion_main!(soa_eval);
