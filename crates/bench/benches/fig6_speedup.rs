//! Figure 6: PAGANI speedup over sequential Cuhre (left panel) and over the two-phase
//! method (right panel) on 5D f5, 6D f6 and 8D f7.
//!
//! A square marker in the paper indicates precisions where only PAGANI satisfied the
//! requested accuracy; this harness prints an `only-PAGANI` flag for the same cases.

use pagani_bench::{
    banner, bench_device, digits_sweep, millis, run_cuhre, run_pagani, run_two_phase,
};
use pagani_integrands::paper::PaperIntegrand;

fn main() {
    banner(
        "Figure 6",
        "PAGANI speedup over Cuhre and over the two-phase method",
    );
    let cases = vec![
        PaperIntegrand::f5(5),
        PaperIntegrand::f6(),
        PaperIntegrand::f7(8),
    ];
    let device = bench_device();

    println!(
        "{:<8} {:>6} {:>18} {:>22}",
        "case", "digits", "speedup vs cuhre", "speedup vs two-phase"
    );
    for integrand in &cases {
        for digits in digits_sweep() {
            let pagani = run_pagani(&device, integrand, digits);
            let cuhre = run_cuhre(integrand, digits);
            let two_phase = run_two_phase(&device, integrand, digits);
            let pagani_ms = millis(pagani.result.wall_time).max(1e-3);
            let speedup_cuhre = millis(cuhre.wall_time) / pagani_ms;
            let speedup_two_phase = millis(two_phase.wall_time) / pagani_ms;
            let only_pagani_cuhre = pagani.result.converged() && !cuhre.converged();
            let only_pagani_two = pagani.result.converged() && !two_phase.converged();
            println!(
                "{:<8} {:>6} {:>15.1}x{} {:>19.1}x{}",
                integrand.label(),
                digits,
                speedup_cuhre,
                if only_pagani_cuhre {
                    " [only-PAGANI]"
                } else {
                    ""
                },
                speedup_two_phase,
                if only_pagani_two {
                    " [only-PAGANI]"
                } else {
                    ""
                },
            );
        }
        println!();
    }
}
