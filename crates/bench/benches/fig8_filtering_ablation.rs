//! Figure 8: PAGANI execution time with and without the heuristic filtering.
//!
//! Three modes, matching the paper's legend: full PAGANI (threshold classification on
//! integral-estimate convergence or memory pressure), `Mem-exhaustion` (threshold
//! classification only under memory pressure) and `No filtering` (relative-error
//! filtering only).  Panels: 5D f4, 8D f4 and 8D f5 (the latter two only in the full
//! sweep — they are the paper's hardest cases).

use pagani_bench::{
    banner, bench_device, digits_sweep, full_sweep, millis, run_pagani_with_filtering,
};
use pagani_core::HeuristicFiltering;
use pagani_integrands::paper::PaperIntegrand;

fn main() {
    banner(
        "Figure 8",
        "filtering ablation: PAGANI vs mem-exhaustion-only vs no filtering",
    );
    let mut cases = vec![PaperIntegrand::f4(5)];
    if full_sweep() {
        cases.push(PaperIntegrand::f4(8));
        cases.push(PaperIntegrand::f5(8));
    }
    let device = bench_device();
    let modes = [
        ("PAGANI", HeuristicFiltering::Full),
        ("Mem-exhaustion", HeuristicFiltering::MemoryExhaustionOnly),
        ("No filtering", HeuristicFiltering::Disabled),
    ];

    for integrand in &cases {
        for digits in digits_sweep() {
            for (name, mode) in modes {
                let out = run_pagani_with_filtering(&device, integrand, digits, mode);
                println!(
                    "{:<8} digits {:>4}  {:<16} time {:>10.1} ms  regions {:>10}  converged {}",
                    integrand.label(),
                    digits,
                    name,
                    millis(out.result.wall_time),
                    out.result.regions_generated,
                    out.result.converged(),
                );
            }
            println!();
        }
    }
}
