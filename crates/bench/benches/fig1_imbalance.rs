//! Figure 1: work-load imbalance of naive static parallelisation.
//!
//! The paper motivates PAGANI by showing that assigning a static partition of the
//! integration space to independent processors leads to wildly different amounts of
//! adaptive work per processor.  This benchmark splits the domain of the 5-D Gaussian
//! f4 into 16 equal sub-domains (a 4×4 grid over the first two axes), runs an
//! independent sequential Cuhre on each, and prints the number of sub-regions every
//! "processor" had to generate.

use pagani_baselines::{Cuhre, CuhreConfig};
use pagani_bench::banner;
use pagani_integrands::paper::PaperIntegrand;
use pagani_quadrature::{Region, Tolerances};

fn main() {
    banner(
        "Figure 1",
        "per-processor subdivision counts under a static 16-way partition (5D f4)",
    );
    let integrand = PaperIntegrand::f4(5);
    // A 4×4 static grid over the first two axes; the remaining axes span [0,1].
    let mut partitions = Vec::with_capacity(16);
    for i in 0..4 {
        for j in 0..4 {
            let mut lo = vec![0.0; 5];
            let mut hi = vec![1.0; 5];
            lo[0] = i as f64 * 0.25;
            hi[0] = (i + 1) as f64 * 0.25;
            lo[1] = j as f64 * 0.25;
            hi[1] = (j + 1) as f64 * 0.25;
            partitions.push(Region::new(lo, hi));
        }
    }

    let cuhre =
        Cuhre::new(CuhreConfig::new(Tolerances::rel(1e-6)).with_max_evaluations(10_000_000));
    let counts: Vec<u64> = partitions
        .iter()
        .map(|region| cuhre.integrate_region(&integrand, region).regions_generated)
        .collect();

    let total: u64 = counts.iter().sum();
    for (processor, &regions) in counts.iter().enumerate() {
        println!(
            "processor {processor:>2}: regions {:>8}   share of total work {:>5.1}%",
            regions,
            100.0 * regions as f64 / total.max(1) as f64
        );
    }
    let max = counts.iter().copied().max().unwrap_or(1);
    let min = counts.iter().copied().min().unwrap_or(1);
    println!("\nsummary: total regions {total}, busiest processor {max}, idlest {min}");
    println!(
        "imbalance (max/min): {:.1}x — the motivation for PAGANI's global breadth-first scheme",
        max as f64 / min.max(1) as f64
    );
}
