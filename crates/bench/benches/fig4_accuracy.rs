//! Figure 4: true relative error versus user-specified digits of precision.
//!
//! For 5D f4, 6D f6 and 8D f7 (the paper's Figure 4 panels) every method is run across
//! the digits sweep; a row reports the true relative error and whether it falls below
//! the requested tolerance (below the dotted line in the paper's plot).  The §4.2
//! digits-of-precision summary table is printed at the end.

use pagani_bench::{
    banner, bench_device, digits_sweep, full_sweep, print_result_row, run_cuhre, run_pagani,
    run_two_phase,
};
use pagani_integrands::paper::PaperIntegrand;

fn main() {
    banner(
        "Figure 4",
        "true relative error vs requested digits (5D f4, 6D f6, 8D f7)",
    );
    let mut cases = vec![
        PaperIntegrand::f4(5),
        PaperIntegrand::f6(),
        PaperIntegrand::f7(8),
    ];
    if full_sweep() {
        cases.push(PaperIntegrand::f3(8));
        cases.push(PaperIntegrand::f5(8));
    }
    let device = bench_device();
    // Highest digits at which each (integrand, method) still satisfied the tolerance.
    let mut attained: Vec<(String, &'static str, f64)> = Vec::new();

    for integrand in &cases {
        for digits in digits_sweep() {
            let target = 10f64.powf(-digits);

            let pagani = run_pagani(&device, integrand, digits);
            print_result_row(integrand, "PAGANI", digits, &pagani.result);
            if pagani.result.converged()
                && pagani
                    .result
                    .true_relative_error(integrand.reference_value())
                    <= target
            {
                record(&mut attained, integrand, "PAGANI", digits);
            }

            let two_phase = run_two_phase(&device, integrand, digits);
            print_result_row(integrand, "two-phase", digits, &two_phase);
            if two_phase.converged()
                && two_phase.true_relative_error(integrand.reference_value()) <= target
            {
                record(&mut attained, integrand, "two-phase", digits);
            }

            let cuhre = run_cuhre(integrand, digits);
            print_result_row(integrand, "cuhre", digits, &cuhre);
            if cuhre.converged() && cuhre.true_relative_error(integrand.reference_value()) <= target
            {
                record(&mut attained, integrand, "cuhre", digits);
            }
        }
        println!();
    }

    println!("\n§4.2 summary — highest digits of precision attained (within the sweep):");
    for (label, method, digits) in &attained_summary(&attained) {
        println!("  {label:<8} {method:<10} {digits} digits");
    }
}

fn record(
    attained: &mut Vec<(String, &'static str, f64)>,
    integrand: &PaperIntegrand,
    method: &'static str,
    digits: f64,
) {
    attained.push((integrand.label(), method, digits));
}

fn attained_summary(raw: &[(String, &'static str, f64)]) -> Vec<(String, &'static str, f64)> {
    let mut best: Vec<(String, &'static str, f64)> = Vec::new();
    for (label, method, digits) in raw {
        match best.iter_mut().find(|(l, m, _)| l == label && m == method) {
            Some(entry) => entry.2 = entry.2.max(*digits),
            None => best.push((label.clone(), method, *digits)),
        }
    }
    best
}
