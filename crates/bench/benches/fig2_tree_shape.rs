//! Figure 2: the shape of the sub-region tree produced by the three adaptive methods.
//!
//! PAGANI grows a wide, shallow tree (every active region splits each iteration),
//! sequential Cuhre grows a narrow, deep one (one split per iteration), and the
//! two-phase method sits in between.  This benchmark prints PAGANI's tree width per
//! depth (from its execution trace) next to the total number of tree nodes generated
//! by each method on the same integrand and tolerance.

use pagani_bench::{banner, bench_device, run_cuhre, run_pagani, run_two_phase};
use pagani_integrands::paper::PaperIntegrand;

fn main() {
    banner(
        "Figure 2",
        "sub-region tree shapes on 5D f4 at 5 digits of precision",
    );
    let integrand = PaperIntegrand::f4(5);
    let digits = 5.0;
    let device = bench_device();

    let pagani = run_pagani(&device, &integrand, digits);
    println!("PAGANI tree width per depth (iteration -> live regions):");
    for (depth, width) in pagani.trace.tree_widths().iter().enumerate() {
        println!("  depth {depth:>3}: {width:>9} regions");
    }
    println!(
        "PAGANI    : depth {:>4}, total nodes {:>10}, converged {}",
        pagani.result.iterations,
        pagani.result.regions_generated,
        pagani.result.converged()
    );

    let two_phase = run_two_phase(&device, &integrand, digits);
    println!(
        "two-phase : phase-I depth {:>4}, total nodes {:>10}, converged {}",
        two_phase.iterations,
        two_phase.regions_generated,
        two_phase.converged()
    );

    let cuhre = run_cuhre(&integrand, digits);
    println!(
        "Cuhre     : splits {:>9}, total nodes {:>10}, converged {}",
        cuhre.iterations,
        cuhre.regions_generated,
        cuhre.converged()
    );
    println!(
        "\nshape: PAGANI's tree is ~{}x wider at its widest level than Cuhre's (which is always 1 split wide)",
        pagani.trace.peak_regions()
    );
}
