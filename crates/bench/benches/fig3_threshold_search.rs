//! Figure 3: the threshold search on the five-dimensional Gaussian.
//!
//! Reproduces the dotted-line trace of the paper's Figure 3: every candidate threshold
//! tried by `Threshold-Classify`, the percentage of regions it would remove and the
//! percentage of the error budget those regions would consume, until a candidate
//! satisfies both the memory and the accuracy requirement.

use pagani_bench::{banner, digits_sweep, run_pagani};
use pagani_device::{Device, DeviceConfig};
use pagani_integrands::paper::PaperIntegrand;

fn main() {
    banner("Figure 3", "threshold-search trace on 5D f4");
    let integrand = PaperIntegrand::f4(5);
    let digits = digits_sweep().last().copied().unwrap_or(5.0).max(6.0);
    // A deliberately small device so the memory-pressure trigger fires early.
    let device = Device::new(DeviceConfig::v100_like().with_memory_capacity(24 << 20));
    let output = run_pagani(&device, &integrand, digits);

    println!(
        "run: {} at {digits} digits — converged: {}, iterations: {}, regions: {}\n",
        integrand.label(),
        output.result.converged(),
        output.result.iterations,
        output.result.regions_generated
    );
    if output.trace.threshold_searches.is_empty() {
        println!(
            "no threshold search was required at this precision (increase PAGANI_BENCH_MAX_DIGITS)"
        );
        return;
    }
    for search in &output.trace.threshold_searches {
        println!(
            "iteration {:>3}  trigger {:?}  successful {}",
            search.iteration, search.trigger, search.successful
        );
        for probe in &search.probes {
            println!(
                "    threshold {:>12.4e}   regions removed {:>5.1}%   error budget used {:>6.1}%   {}",
                probe.threshold,
                probe.fraction_finished * 100.0,
                probe.budget_fraction * 100.0,
                if probe.accepted { "ACCEPTED" } else { "rejected" }
            );
        }
    }
}
