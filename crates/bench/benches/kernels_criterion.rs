//! Criterion micro-benchmarks of the kernels that make up a PAGANI iteration:
//! Genz–Malik region evaluation across dimensions, the parallel reductions and stream
//! compaction of the post-processing step, the threshold search, and region-list
//! splitting.  These complement the figure benchmarks by pinpointing where the wall
//! time of §4.3.2 actually goes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pagani_core::classify::ACTIVE;
use pagani_core::region_list::RegionList;
use pagani_core::threshold::{threshold_classify, ThresholdPolicy};
use pagani_core::ScratchArena;
use pagani_device::{reduce, scan, Device, DeviceConfig, MemoryPool};
use pagani_integrands::paper::PaperIntegrand;
use pagani_quadrature::{EvalScratch, GenzMalik, Integrand, Region};

fn bench_genz_malik(c: &mut Criterion) {
    let mut group = c.benchmark_group("genz_malik_evaluate");
    group.sample_size(20);
    for dim in [3usize, 5, 8] {
        let rule = GenzMalik::new(dim);
        let integrand = PaperIntegrand::f4(dim);
        let region = Region::unit_cube(dim);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            let mut scratch = EvalScratch::new(dim);
            b.iter(|| {
                let est = rule.evaluate(&integrand, &region, &mut scratch);
                black_box(est.integral)
            });
        });
    }
    group.finish();
}

fn bench_reductions(c: &mut Criterion) {
    let mut group = c.benchmark_group("reductions");
    group.sample_size(20);
    let values: Vec<f64> = (0..1_000_000).map(|i| (i % 1000) as f64 * 1e-3).collect();
    let mask: Vec<u8> = (0..values.len()).map(|i| (i % 3 == 0) as u8).collect();
    group.bench_function("sum_1M", |b| b.iter(|| black_box(reduce::sum(&values))));
    group.bench_function("masked_sum_1M", |b| {
        b.iter(|| black_box(reduce::masked_sum(&values, &mask)))
    });
    group.bench_function("min_max_1M", |b| {
        b.iter(|| black_box(reduce::min_max(&values)))
    });
    group.bench_function("compact_1M", |b| {
        b.iter(|| black_box(scan::compact_by_mask(&values, &mask).len()))
    });
    group.finish();
}

fn bench_threshold_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("threshold_classify");
    group.sample_size(20);
    let n = 100_000usize;
    let errors: Vec<f64> = (0..n).map(|i| 1e-12 * (1.0 + (i % 977) as f64)).collect();
    let mask = vec![ACTIVE; n];
    let iteration_error: f64 = errors.iter().sum();
    // One warm arena across iterations, as in the driver loop: candidate-mask
    // probes recycle shelved storage instead of allocating.
    let arena = ScratchArena::new();
    group.bench_function("100k_regions", |b| {
        b.iter(|| {
            let outcome = threshold_classify(
                &mask,
                &errors,
                1e-6,
                iteration_error,
                ThresholdPolicy::default(),
                &arena,
            );
            arena.put_mask(black_box(outcome).mask);
        })
    });
    group.finish();
}

fn bench_region_list(c: &mut Criterion) {
    let mut group = c.benchmark_group("region_list");
    group.sample_size(20);
    let pool = MemoryPool::new(4 << 30);
    let list = RegionList::initial_split(&Region::unit_cube(5), 8, &pool).unwrap();
    let axes: Vec<usize> = (0..list.len()).map(|i| i % 5).collect();
    let mask: Vec<u8> = (0..list.len()).map(|i| (i % 2) as u8).collect();
    group.bench_function("split_all_32k_5d", |b| {
        b.iter(|| black_box(list.split_all(&axes, &pool).unwrap().len()))
    });
    group.bench_function("filter_32k_5d", |b| {
        b.iter(|| black_box(list.filter(&mask, &pool).unwrap().len()))
    });
    group.finish();
}

/// Per-launch overhead of the substrate itself: a small grid with a trivial
/// body, repeated.  With the spawn-per-call substrate this was dominated by
/// OS-thread creation on every launch; the persistent pool pays only queue
/// traffic, so this is the number that makes the fig5/fig6 small-kernel
/// timings meaningful.
fn bench_launch_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("launch_overhead");
    group.sample_size(50);
    let shared = Device::v100_like();
    let mut out = vec![0.0f64; 64];
    group.bench_function("launch_batch_64_trivial_global_pool", |b| {
        b.iter(|| {
            shared
                .launch_batch("bench.trivial", 64, 1, &mut out, |ctx, slot| {
                    slot[0] = ctx.block_idx as f64;
                })
                .unwrap();
            black_box(out[63])
        })
    });
    let pooled = Device::new(DeviceConfig::v100_like().with_worker_threads(2));
    group.bench_function("launch_batch_64_trivial_2_workers", |b| {
        b.iter(|| {
            pooled
                .launch_batch("bench.trivial", 64, 1, &mut out, |ctx, slot| {
                    slot[0] = ctx.block_idx as f64;
                })
                .unwrap();
            black_box(out[63])
        })
    });
    group.finish();
}

fn bench_integrand_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("integrand_eval");
    group.sample_size(30);
    let point8 = [0.37; 8];
    for integrand in [
        PaperIntegrand::f1(8),
        PaperIntegrand::f4(8),
        PaperIntegrand::f7(8),
    ] {
        group.bench_function(integrand.label(), |b| {
            b.iter(|| black_box(integrand.eval(&point8)))
        });
    }
    group.finish();
}

criterion_group!(
    kernels,
    bench_genz_malik,
    bench_reductions,
    bench_threshold_search,
    bench_region_list,
    bench_launch_overhead,
    bench_integrand_suite
);
criterion_main!(kernels);
