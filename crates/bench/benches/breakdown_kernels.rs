//! §4.3.2 performance breakdown: the share of execution time per kernel category.
//!
//! PAGANI is run on the 5-D Gaussian and the 8-D box integral at the top of the digits
//! sweep, and the device profile is aggregated into the four categories the paper
//! discusses: region evaluation, post-processing (two-level refinement, classification
//! and reductions), threshold classification, and filtering + sub-division.  The paper
//! reports evaluation taking more than 90 % of the time on a V100; the same dominance
//! (the precise share depends on the host CPU) is what this harness prints.

use pagani_bench::{banner, bench_device, digits_sweep, run_pagani};
use pagani_integrands::paper::PaperIntegrand;

fn main() {
    banner("§4.3.2", "per-kernel-category execution-time breakdown");
    let digits = digits_sweep().last().copied().unwrap_or(5.0);
    for integrand in [PaperIntegrand::f4(5), PaperIntegrand::f7(8)] {
        // A fresh device per case so the profile covers exactly one run.
        let device = bench_device();
        let out = run_pagani(&device, &integrand, digits);
        let profile = device.profile();
        let evaluate = profile.fraction_for_prefix("evaluate");
        let postprocess = profile.fraction_for_prefix("postprocess");
        let threshold = profile.fraction_for_prefix("threshold");
        let filter_split = profile.fraction_for_prefix("filter");
        println!(
            "{} at {digits} digits (converged: {}, iterations: {}):",
            integrand.label(),
            out.result.converged(),
            out.result.iterations
        );
        println!("  evaluate              {:>6.1}%", evaluate * 100.0);
        println!("  post-processing       {:>6.1}%", postprocess * 100.0);
        println!("  threshold classify    {:>6.1}%", threshold * 100.0);
        println!("  filter + sub-division {:>6.1}%", filter_split * 100.0);
        println!("  kernel launches:");
        for (name, timing) in profile.snapshot() {
            println!(
                "    {:<26} launches {:>6}  total {:>10.2} ms",
                name,
                timing.launches,
                timing.total.as_secs_f64() * 1e3
            );
        }
        println!();
    }
}
