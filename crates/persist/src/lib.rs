//! `pagani-persist`: the persistence layer.
//!
//! PAGANI's region tree *is* the algorithm's state: a partially refined tree
//! is a valid starting point for further refinement, so persisting it buys
//! crash recovery, warm starts and a progressive-accuracy API all at once.
//! This crate holds the pieces that make that possible without any external
//! dependencies:
//!
//! - [`json`] — the hand-rolled `Value` serializer/parser shared with
//!   `pagani-analyze` (extracted from there so reports and snapshots use one
//!   implementation).
//! - [`Snapshot`] — a versioned, bit-exact serialization of driver state:
//!   `RegionList` geometry, accumulated estimates, and iteration counters,
//!   with every `f64` round-tripped via `to_bits` so a resumed run can be
//!   bit-identical to an uninterrupted one.
//! - [`ResultCache`] — an LRU cache with a byte budget, keyed by
//!   `(integrand id, region, tolerance)`, storing converged results for
//!   exact-hit serving and snapshots for warm-started resumption.
//!
//! The crate is deliberately free of device/driver types: `pagani-core`
//! converts to and from its own state, which keeps this layer reusable by
//! tooling (and by the analyzer, which must not depend on core).

#![forbid(unsafe_code)]
#![warn(unreachable_pub)]

pub mod cache;
pub mod json;
pub mod snapshot;

pub use cache::{CacheKey, CachedResult, ResultCache, WarmStartInfo};
pub use snapshot::{Snapshot, SnapshotError, SNAPSHOT_FORMAT_VERSION};
