//! Bit-exact serializable snapshots of driver state.
//!
//! A [`Snapshot`] captures everything the PAGANI driver loop carries between
//! generations: the live `RegionList` geometry, the parent integrals needed
//! for two-level error refinement, the accumulated finished/frozen error
//! budget, and the iteration counters.  The format is versioned JSON built on
//! [`crate::json`], with one deliberate twist: every `f64` is encoded as its
//! exact bit pattern (a 16-digit lowercase hex string via [`f64::to_bits`])
//! and every `u64` counter as a decimal string, because JSON numbers go
//! through an `f64` printer that cannot round-trip either losslessly.  A
//! decoded snapshot is therefore *bit-identical* to the encoded one, which is
//! what lets a resumed run reproduce an uninterrupted run to the bit.

use std::fmt;

use crate::json::{parse, Value};

/// Version stamp written into every serialized snapshot.
///
/// Bumped when the field set or encoding changes; [`Snapshot::from_json_str`]
/// rejects documents with any other version rather than guessing.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// Marker distinguishing snapshot documents from other JSON emitted by the
/// workspace (e.g. analyzer reports or bench records).
const FORMAT_MARKER: &str = "pagani-snapshot";

/// A serializable, bit-exact capture of the driver loop's state between two
/// generations.
///
/// The capture convention is "about to run iteration [`next_iteration`]":
/// the region list holds the generation that has not yet been evaluated, and
/// every accumulator holds the value it had at the top of that iteration.
/// Resuming re-enters the loop at `next_iteration` with this exact state, so
/// the continuation performs the same float operations in the same order as
/// the uninterrupted run.
///
/// [`next_iteration`]: Snapshot::next_iteration
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Format version this snapshot was built with
    /// ([`SNAPSHOT_FORMAT_VERSION`]).
    pub version: u32,
    /// Identifier of the integrand (its `Integrand::name()`); resume and the
    /// cache both refuse to mix snapshots across integrand ids.
    pub integrand_id: String,
    /// Lower corner of the original integration region, one entry per axis.
    pub region_lo: Vec<f64>,
    /// Upper corner of the original integration region, one entry per axis.
    pub region_hi: Vec<f64>,
    /// Relative tolerance the run was configured with.
    pub rel_tol: f64,
    /// Absolute tolerance the run was configured with.
    pub abs_tol: f64,
    /// Whether the run that produced this snapshot went on to converge.  A
    /// converged snapshot is still resumable (e.g. under a tighter
    /// tolerance): re-running its final generation reclassifies the regions
    /// against the new budget.
    pub converged: bool,
    /// Dimensionality of the integration domain.
    pub dim: usize,
    /// Region-major lower corners of the live generation, `regions × dim`.
    pub lefts: Vec<f64>,
    /// Region-major edge lengths of the live generation, `regions × dim`.
    pub lengths: Vec<f64>,
    /// Integral estimates of the previous generation's active regions, used
    /// for two-level error refinement.  `None` when the snapshot was taken at
    /// a point where the parent/child pairing is not available (the first
    /// generation, or a split that ran out of memory).
    pub parent_integrals: Option<Vec<f64>>,
    /// Estimate contribution of regions already folded out of the active set.
    pub finished_estimate: f64,
    /// Error contribution of regions already folded out of the active set.
    pub finished_error: f64,
    /// Error committed by the two-phase heuristic's threshold freezes.
    pub threshold_frozen_error: f64,
    /// Total integrand evaluations performed so far.
    pub function_evaluations: u64,
    /// Total regions materialized so far (initial split plus all children).
    pub regions_generated: u64,
    /// Cumulative estimate of the previous generation, feeding the
    /// heuristic's convergence-trend trigger.  `None` before the first
    /// generation completes.
    pub previous_cumulative: Option<f64>,
    /// Index of the first iteration the resumed loop should run.
    pub next_iteration: usize,
    /// Best cumulative estimate observed so far (reporting fallback for
    /// non-converged exits).
    pub latest_estimate: f64,
    /// Error estimate paired with [`latest_estimate`](Snapshot::latest_estimate).
    pub latest_error: f64,
}

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input was not syntactically valid JSON.
    Syntax(String),
    /// The JSON was valid but did not match the snapshot schema.
    Schema(&'static str),
    /// The document declares a format version this build does not understand.
    Version(u32),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Syntax(msg) => write!(f, "snapshot is not valid JSON: {msg}"),
            SnapshotError::Schema(what) => write!(f, "snapshot schema violation: {what}"),
            SnapshotError::Version(v) => {
                write!(
                    f,
                    "snapshot format version {v} is not supported (expected {SNAPSHOT_FORMAT_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

fn f64_value(v: f64) -> Value {
    Value::Str(format!("{:016x}", v.to_bits()))
}

fn f64_slice_value(vs: &[f64]) -> Value {
    Value::Arr(vs.iter().map(|&v| f64_value(v)).collect())
}

fn u64_value(v: u64) -> Value {
    Value::Str(v.to_string())
}

fn opt_f64_value(v: Option<f64>) -> Value {
    v.map_or(Value::Null, f64_value)
}

fn f64_from(v: &Value) -> Result<f64, SnapshotError> {
    let Value::Str(s) = v else {
        return Err(SnapshotError::Schema("expected a hex-bits float string"));
    };
    if s.len() != 16 {
        return Err(SnapshotError::Schema("hex-bits float must be 16 digits"));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| SnapshotError::Schema("invalid hex-bits float"))
}

fn f64_vec_from(v: &Value) -> Result<Vec<f64>, SnapshotError> {
    let Value::Arr(items) = v else {
        return Err(SnapshotError::Schema(
            "expected an array of hex-bits floats",
        ));
    };
    items.iter().map(f64_from).collect()
}

fn u64_from(v: &Value) -> Result<u64, SnapshotError> {
    let Value::Str(s) = v else {
        return Err(SnapshotError::Schema("expected a decimal counter string"));
    };
    s.parse::<u64>()
        .map_err(|_| SnapshotError::Schema("invalid decimal counter"))
}

fn usize_from(v: &Value) -> Result<usize, SnapshotError> {
    let Value::Num(n) = v else {
        return Err(SnapshotError::Schema("expected an integer"));
    };
    if n.fract() != 0.0 || *n < 0.0 || *n > 9e15 {
        return Err(SnapshotError::Schema(
            "expected a small non-negative integer",
        ));
    }
    Ok(*n as usize)
}

fn field<'a>(
    obj: &'a std::collections::BTreeMap<String, Value>,
    key: &'static str,
) -> Result<&'a Value, SnapshotError> {
    obj.get(key).ok_or(SnapshotError::Schema("missing field"))
}

impl Snapshot {
    /// Number of regions in the captured generation.
    pub fn regions(&self) -> usize {
        self.lefts.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Rough in-memory footprint in bytes, used for cache byte budgeting.
    pub fn approx_bytes(&self) -> usize {
        let floats = self.region_lo.len()
            + self.region_hi.len()
            + self.lefts.len()
            + self.lengths.len()
            + self.parent_integrals.as_ref().map_or(0, Vec::len);
        floats * std::mem::size_of::<f64>() + self.integrand_id.len() + 200
    }

    /// Structural consistency checks shared by the decoder and resume.
    ///
    /// Returns the schema violation (if any): mismatched geometry buffer
    /// lengths, a region count that does not divide evenly by `dim`, corner
    /// vectors of the wrong dimensionality, or a parent list that is not
    /// exactly half the region count.
    pub fn validate(&self) -> Result<(), SnapshotError> {
        if self.dim == 0 {
            return Err(SnapshotError::Schema("dim must be positive"));
        }
        if self.region_lo.len() != self.dim || self.region_hi.len() != self.dim {
            return Err(SnapshotError::Schema(
                "region corners must have dim entries",
            ));
        }
        if self.lefts.len() != self.lengths.len() {
            return Err(SnapshotError::Schema("lefts/lengths length mismatch"));
        }
        if self.lefts.len() % self.dim != 0 {
            return Err(SnapshotError::Schema(
                "geometry length not divisible by dim",
            ));
        }
        if let Some(parents) = &self.parent_integrals {
            if parents.len() * 2 != self.regions() {
                return Err(SnapshotError::Schema(
                    "parent integrals must be exactly half the region count",
                ));
            }
        }
        Ok(())
    }

    /// Serialize to the versioned JSON format.
    pub fn to_json_string(&self) -> String {
        Value::obj([
            ("format", Value::Str(FORMAT_MARKER.to_string())),
            ("version", Value::Num(f64::from(self.version))),
            ("integrand_id", Value::Str(self.integrand_id.clone())),
            ("region_lo", f64_slice_value(&self.region_lo)),
            ("region_hi", f64_slice_value(&self.region_hi)),
            ("rel_tol", f64_value(self.rel_tol)),
            ("abs_tol", f64_value(self.abs_tol)),
            ("converged", Value::Bool(self.converged)),
            ("dim", Value::Num(self.dim as f64)),
            ("lefts", f64_slice_value(&self.lefts)),
            ("lengths", f64_slice_value(&self.lengths)),
            (
                "parent_integrals",
                self.parent_integrals
                    .as_ref()
                    .map_or(Value::Null, |p| f64_slice_value(p)),
            ),
            ("finished_estimate", f64_value(self.finished_estimate)),
            ("finished_error", f64_value(self.finished_error)),
            (
                "threshold_frozen_error",
                f64_value(self.threshold_frozen_error),
            ),
            ("function_evaluations", u64_value(self.function_evaluations)),
            ("regions_generated", u64_value(self.regions_generated)),
            (
                "previous_cumulative",
                opt_f64_value(self.previous_cumulative),
            ),
            ("next_iteration", Value::Num(self.next_iteration as f64)),
            ("latest_estimate", f64_value(self.latest_estimate)),
            ("latest_error", f64_value(self.latest_error)),
        ])
        .to_json()
    }

    /// Serialize to bytes (UTF-8 JSON).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_json_string().into_bytes()
    }

    /// Decode from the versioned JSON format, validating schema and version.
    pub fn from_json_str(input: &str) -> Result<Self, SnapshotError> {
        let value = parse(input).map_err(SnapshotError::Syntax)?;
        let Value::Obj(obj) = value else {
            return Err(SnapshotError::Schema("snapshot must be a JSON object"));
        };
        match field(&obj, "format")? {
            Value::Str(s) if s == FORMAT_MARKER => {}
            _ => return Err(SnapshotError::Schema("not a pagani-snapshot document")),
        }
        let version = usize_from(field(&obj, "version")?)? as u32;
        if version != SNAPSHOT_FORMAT_VERSION {
            return Err(SnapshotError::Version(version));
        }
        let integrand_id = match field(&obj, "integrand_id")? {
            Value::Str(s) => s.clone(),
            _ => return Err(SnapshotError::Schema("integrand_id must be a string")),
        };
        let converged = match field(&obj, "converged")? {
            Value::Bool(b) => *b,
            _ => return Err(SnapshotError::Schema("converged must be a boolean")),
        };
        let parent_integrals = match field(&obj, "parent_integrals")? {
            Value::Null => None,
            v => Some(f64_vec_from(v)?),
        };
        let previous_cumulative = match field(&obj, "previous_cumulative")? {
            Value::Null => None,
            v => Some(f64_from(v)?),
        };
        let snapshot = Snapshot {
            version,
            integrand_id,
            region_lo: f64_vec_from(field(&obj, "region_lo")?)?,
            region_hi: f64_vec_from(field(&obj, "region_hi")?)?,
            rel_tol: f64_from(field(&obj, "rel_tol")?)?,
            abs_tol: f64_from(field(&obj, "abs_tol")?)?,
            converged,
            dim: usize_from(field(&obj, "dim")?)?,
            lefts: f64_vec_from(field(&obj, "lefts")?)?,
            lengths: f64_vec_from(field(&obj, "lengths")?)?,
            parent_integrals,
            finished_estimate: f64_from(field(&obj, "finished_estimate")?)?,
            finished_error: f64_from(field(&obj, "finished_error")?)?,
            threshold_frozen_error: f64_from(field(&obj, "threshold_frozen_error")?)?,
            function_evaluations: u64_from(field(&obj, "function_evaluations")?)?,
            regions_generated: u64_from(field(&obj, "regions_generated")?)?,
            previous_cumulative,
            next_iteration: usize_from(field(&obj, "next_iteration")?)?,
            latest_estimate: f64_from(field(&obj, "latest_estimate")?)?,
            latest_error: f64_from(field(&obj, "latest_error")?)?,
        };
        snapshot.validate()?;
        Ok(snapshot)
    }

    /// Decode from bytes (UTF-8 JSON).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| SnapshotError::Schema("snapshot bytes are not UTF-8"))?;
        Self::from_json_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            version: SNAPSHOT_FORMAT_VERSION,
            integrand_id: "f4_gaussian".to_string(),
            region_lo: vec![0.0, -1.0],
            region_hi: vec![1.0, 1.0],
            rel_tol: 1e-6,
            abs_tol: 1e-20,
            converged: false,
            dim: 2,
            lefts: vec![0.0, -1.0, 0.5, -1.0],
            lengths: vec![0.5, 2.0, 0.5, 2.0],
            parent_integrals: Some(vec![0.123_456_789_012_345_6]),
            finished_estimate: 0.25,
            finished_error: 1.5e-9,
            threshold_frozen_error: f64::MIN_POSITIVE,
            function_evaluations: u64::MAX - 7,
            regions_generated: 12,
            previous_cumulative: Some(-0.0),
            next_iteration: 3,
            latest_estimate: 0.999_999_999_999_999_9,
            latest_error: f64::INFINITY,
        }
    }

    #[test]
    fn round_trips_to_the_bit() {
        let snap = sample();
        let decoded = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(decoded, snap);
        // Bit-level checks beyond PartialEq: -0.0 and extreme values survive.
        assert_eq!(
            decoded.previous_cumulative.unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(decoded.latest_error.to_bits(), f64::INFINITY.to_bits());
        assert_eq!(decoded.function_evaluations, u64::MAX - 7);
    }

    #[test]
    fn serialization_is_byte_stable() {
        let snap = sample();
        assert_eq!(snap.to_bytes(), snap.to_bytes());
        let reencoded = Snapshot::from_bytes(&snap.to_bytes()).unwrap().to_bytes();
        assert_eq!(reencoded, snap.to_bytes());
    }

    #[test]
    fn rejects_foreign_versions() {
        let mut text = sample().to_json_string();
        text = text.replace("\"version\": 1", "\"version\": 2");
        assert_eq!(
            Snapshot::from_json_str(&text),
            Err(SnapshotError::Version(2))
        );
    }

    #[test]
    fn rejects_inconsistent_geometry() {
        let mut snap = sample();
        snap.lengths.pop();
        assert_eq!(
            snap.validate(),
            Err(SnapshotError::Schema("lefts/lengths length mismatch"))
        );
        let mut snap = sample();
        snap.parent_integrals = Some(vec![1.0, 2.0, 3.0]);
        assert!(snap.validate().is_err());
    }

    #[test]
    fn rejects_non_snapshot_documents() {
        assert!(matches!(
            Snapshot::from_json_str("{\"format\": \"other\"}"),
            Err(SnapshotError::Schema(_))
        ));
        assert!(matches!(
            Snapshot::from_json_str("not json"),
            Err(SnapshotError::Syntax(_))
        ));
    }
}
