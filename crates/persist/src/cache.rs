//! Result cache: converged results and resumable snapshots, LRU-evicted
//! under a byte budget.
//!
//! Production traffic is highly repetitive, so the service keeps a cache
//! keyed by `(integrand id, region, tolerance)`.  Each entry can hold a
//! converged [`CachedResult`] (served on an exact key hit without touching a
//! device) and/or a [`Snapshot`] of the region tree (used to warm-start a
//! request at a different tolerance over the same integrand and region).
//!
//! Two disciplines from ARCHITECTURE.md apply here: the cache uses a single
//! internal mutex and never acquires another lock while holding it (rule R1,
//! lock-order acyclicity), and recency is tracked with a logical counter
//! rather than the wall clock (rule R4 — the clock must never influence
//! result-producing control flow; eviction order is part of which snapshot a
//! warm start sees).

use std::collections::HashMap;
use std::sync::Mutex;

use crate::snapshot::Snapshot;

/// Cache key: the exact identity of an integration request.
///
/// Region corners and tolerances are stored as `f64::to_bits` patterns so
/// key equality is bit-exact (`-0.0` and `0.0` are *different* keys, NaN
/// corners compare equal to themselves) and so the key can implement `Hash`
/// and `Eq` without float caveats.
///
/// The integrand id is the integrand's `name()`.  Closure-built integrands
/// share a default name, so callers that mix distinct closures through one
/// cache must give them unique names — the cache cannot see function bodies.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Integrand identifier (`Integrand::name()`).
    pub integrand_id: String,
    /// Bit patterns of the region's lower corner, one per axis.
    pub region_lo_bits: Vec<u64>,
    /// Bit patterns of the region's upper corner, one per axis.
    pub region_hi_bits: Vec<u64>,
    /// Bit pattern of the relative tolerance.
    pub rel_bits: u64,
    /// Bit pattern of the absolute tolerance.
    pub abs_bits: u64,
}

impl CacheKey {
    /// Build a key from the request's raw floats.
    pub fn new(integrand_id: &str, lo: &[f64], hi: &[f64], rel_tol: f64, abs_tol: f64) -> Self {
        CacheKey {
            integrand_id: integrand_id.to_string(),
            region_lo_bits: lo.iter().map(|v| v.to_bits()).collect(),
            region_hi_bits: hi.iter().map(|v| v.to_bits()).collect(),
            rel_bits: rel_tol.to_bits(),
            abs_bits: abs_tol.to_bits(),
        }
    }

    fn approx_bytes(&self) -> usize {
        self.integrand_id.len()
            + (self.region_lo_bits.len() + self.region_hi_bits.len() + 2)
                * std::mem::size_of::<u64>()
            + 64
    }
}

/// A converged result stored for exact-hit serving.
///
/// Plain data rather than core's `IntegrationResult` so this crate stays
/// free of driver types; the service layer converts on the way in and out.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedResult {
    /// Converged integral estimate.
    pub estimate: f64,
    /// Error estimate paired with the integral.
    pub error_estimate: f64,
    /// Iterations the original run took.
    pub iterations: usize,
    /// Integrand evaluations the original run spent (the savings of a hit).
    pub function_evaluations: u64,
    /// Regions the original run materialized.
    pub regions_generated: u64,
}

/// Non-bumping summary of a cached snapshot, for admission-control peeks.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStartInfo {
    /// Relative tolerance the snapshotted run was configured with.
    pub rel_tol: f64,
    /// Absolute tolerance the snapshotted run was configured with.
    pub abs_tol: f64,
    /// Error already frozen into the snapshot's finished set.
    pub finished_error: f64,
    /// Best cumulative estimate the snapshotted run had observed.
    pub latest_estimate: f64,
    /// Evaluations banked in the snapshot (work a warm start inherits).
    pub function_evaluations: u64,
    /// Whether the snapshotted run converged.
    pub converged: bool,
}

struct Entry {
    result: Option<CachedResult>,
    snapshot: Option<Snapshot>,
    /// Logical-clock stamp of the last hit or store (rule R4: no `Instant`).
    last_used: u64,
    bytes: usize,
}

fn entry_bytes(
    key: &CacheKey,
    result: &Option<CachedResult>,
    snapshot: &Option<Snapshot>,
) -> usize {
    key.approx_bytes()
        + result
            .as_ref()
            .map_or(0, |_| std::mem::size_of::<CachedResult>())
        + snapshot.as_ref().map_or(0, Snapshot::approx_bytes)
}

struct CacheState {
    map: HashMap<CacheKey, Entry>,
    clock: u64,
    bytes_used: usize,
    byte_budget: usize,
    evictions: u64,
}

/// Shared LRU result cache with a byte budget.
///
/// All operations take the single internal mutex for their whole duration;
/// there is no lock ordering to get wrong because the cache never calls out
/// while holding it.
pub struct ResultCache {
    state: Mutex<CacheState>,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.lock();
        f.debug_struct("ResultCache")
            .field("entries", &state.map.len())
            .field("bytes_used", &state.bytes_used)
            .field("byte_budget", &state.byte_budget)
            .field("evictions", &state.evictions)
            .finish()
    }
}

impl ResultCache {
    /// Create a cache that evicts least-recently-used entries once the
    /// approximate footprint exceeds `byte_budget`.
    pub fn new(byte_budget: usize) -> Self {
        ResultCache {
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                clock: 0,
                bytes_used: 0,
                byte_budget,
                evictions: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        // The cache holds plain data and never panics while locked, but be
        // robust to a poisoned mutex from a panicking caller thread anyway.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Look up a converged result by exact key, bumping its recency.
    pub fn lookup_result(&self, key: &CacheKey) -> Option<CachedResult> {
        let mut state = self.lock();
        state.clock += 1;
        let clock = state.clock;
        let entry = state.map.get_mut(key)?;
        let hit = entry.result.clone()?;
        entry.last_used = clock;
        Some(hit)
    }

    /// Find the best snapshot for `(integrand, region)` at *any* tolerance,
    /// bumping the owning entry's recency.
    ///
    /// "Best" is the snapshot with the most banked evaluations — the deepest
    /// tree, which gives a warm start the largest head start.
    pub fn lookup_snapshot(
        &self,
        integrand_id: &str,
        region_lo_bits: &[u64],
        region_hi_bits: &[u64],
    ) -> Option<Snapshot> {
        let mut state = self.lock();
        state.clock += 1;
        let clock = state.clock;
        let entry = state
            .map
            .iter_mut()
            .filter(|(k, e)| {
                e.snapshot.is_some()
                    && k.integrand_id == integrand_id
                    && k.region_lo_bits == region_lo_bits
                    && k.region_hi_bits == region_hi_bits
            })
            .max_by_key(|(_, e)| e.snapshot.as_ref().map_or(0, |s| s.function_evaluations))?
            .1;
        entry.last_used = clock;
        entry.snapshot.clone()
    }

    /// Whether an exact converged result exists for `key`, without bumping
    /// recency (admission control must not perturb eviction order).
    pub fn contains_result(&self, key: &CacheKey) -> bool {
        let state = self.lock();
        state.map.get(key).is_some_and(|e| e.result.is_some())
    }

    /// Summarize the best warm-start snapshot for `(integrand, region)`
    /// without bumping recency, for admission-control cost discounting.
    pub fn peek_warm_start(
        &self,
        integrand_id: &str,
        region_lo_bits: &[u64],
        region_hi_bits: &[u64],
    ) -> Option<WarmStartInfo> {
        let state = self.lock();
        state
            .map
            .iter()
            .filter_map(|(k, e)| {
                let snap = e.snapshot.as_ref()?;
                (k.integrand_id == integrand_id
                    && k.region_lo_bits == region_lo_bits
                    && k.region_hi_bits == region_hi_bits)
                    .then_some(snap)
            })
            .max_by_key(|s| s.function_evaluations)
            .map(|s| WarmStartInfo {
                rel_tol: s.rel_tol,
                abs_tol: s.abs_tol,
                finished_error: s.finished_error,
                latest_estimate: s.latest_estimate,
                function_evaluations: s.function_evaluations,
                converged: s.converged,
            })
    }

    /// Store a result and/or snapshot under `key`, merging with any existing
    /// entry (a `None` part leaves the existing part in place) and evicting
    /// least-recently-used entries until the byte budget is met.
    pub fn store(&self, key: CacheKey, result: Option<CachedResult>, snapshot: Option<Snapshot>) {
        if result.is_none() && snapshot.is_none() {
            return;
        }
        let mut state = self.lock();
        state.clock += 1;
        let clock = state.clock;
        let mut entry = state.map.remove(&key).unwrap_or(Entry {
            result: None,
            snapshot: None,
            last_used: clock,
            bytes: 0,
        });
        state.bytes_used -= entry.bytes;
        if result.is_some() {
            entry.result = result;
        }
        if snapshot.is_some() {
            entry.snapshot = snapshot;
        }
        entry.bytes = entry_bytes(&key, &entry.result, &entry.snapshot);
        entry.last_used = clock;
        state.bytes_used += entry.bytes;
        state.map.insert(key.clone(), entry);
        while state.bytes_used > state.byte_budget && !state.map.is_empty() {
            let victim = state
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty map has a minimum");
            let evicted = state.map.remove(&victim).expect("victim exists");
            state.bytes_used -= evicted.bytes;
            state.evictions += 1;
            if victim == key {
                // The fresh entry alone exceeds the budget; drop it outright
                // rather than evicting the rest of the cache for nothing.
                break;
            }
        }
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().map.is_empty()
    }

    /// Approximate bytes currently held.
    pub fn bytes_used(&self) -> usize {
        self.lock().bytes_used
    }

    /// The configured byte budget.
    pub fn byte_budget(&self) -> usize {
        self.lock().byte_budget
    }

    /// Entries evicted so far to satisfy the byte budget.
    pub fn evictions(&self) -> u64 {
        self.lock().evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SNAPSHOT_FORMAT_VERSION;

    fn key(id: &str, rel: f64) -> CacheKey {
        CacheKey::new(id, &[0.0, 0.0], &[1.0, 1.0], rel, 1e-20)
    }

    fn result(evals: u64) -> CachedResult {
        CachedResult {
            estimate: 1.0,
            error_estimate: 1e-9,
            iterations: 4,
            function_evaluations: evals,
            regions_generated: 100,
        }
    }

    fn snapshot(evals: u64, regions: usize) -> Snapshot {
        Snapshot {
            version: SNAPSHOT_FORMAT_VERSION,
            integrand_id: "f".to_string(),
            region_lo: vec![0.0, 0.0],
            region_hi: vec![1.0, 1.0],
            rel_tol: 1e-3,
            abs_tol: 1e-20,
            converged: false,
            dim: 2,
            lefts: vec![0.0; regions * 2],
            lengths: vec![1.0; regions * 2],
            parent_integrals: None,
            finished_estimate: 0.0,
            finished_error: 0.0,
            threshold_frozen_error: 0.0,
            function_evaluations: evals,
            regions_generated: regions as u64,
            previous_cumulative: None,
            next_iteration: 1,
            latest_estimate: 1.0,
            latest_error: 1e-3,
        }
    }

    #[test]
    fn exact_hits_require_bitwise_key_equality() {
        let cache = ResultCache::new(1 << 20);
        cache.store(key("f", 1e-3), Some(result(17)), None);
        assert_eq!(cache.lookup_result(&key("f", 1e-3)), Some(result(17)));
        assert_eq!(cache.lookup_result(&key("f", 1e-4)), None);
        assert_eq!(cache.lookup_result(&key("g", 1e-3)), None);
        let negated = CacheKey::new("f", &[-0.0, 0.0], &[1.0, 1.0], 1e-3, 1e-20);
        assert_eq!(cache.lookup_result(&negated), None);
    }

    #[test]
    fn snapshot_lookup_spans_tolerances_and_prefers_deepest() {
        let cache = ResultCache::new(1 << 20);
        cache.store(key("f", 1e-2), None, Some(snapshot(100, 4)));
        cache.store(key("f", 1e-3), None, Some(snapshot(900, 16)));
        let k = key("f", 1e-6); // tolerance absent from the cache
        let best = cache
            .lookup_snapshot(&k.integrand_id, &k.region_lo_bits, &k.region_hi_bits)
            .unwrap();
        assert_eq!(best.function_evaluations, 900);
        let info = cache
            .peek_warm_start(&k.integrand_id, &k.region_lo_bits, &k.region_hi_bits)
            .unwrap();
        assert_eq!(info.function_evaluations, 900);
        assert_eq!(info.rel_tol, 1e-3);
    }

    #[test]
    fn store_merges_result_and_snapshot_parts() {
        let cache = ResultCache::new(1 << 20);
        cache.store(key("f", 1e-3), None, Some(snapshot(50, 2)));
        cache.store(key("f", 1e-3), Some(result(60)), None);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup_result(&key("f", 1e-3)).is_some());
        let k = key("f", 1e-3);
        assert!(cache
            .lookup_snapshot(&k.integrand_id, &k.region_lo_bits, &k.region_hi_bits)
            .is_some());
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let probe = snapshot(1, 64);
        let one_entry = entry_bytes(&key("a", 1e-3), &None, &Some(probe.clone()));
        // Room for two entries but not three.
        let cache = ResultCache::new(one_entry * 2 + one_entry / 2);
        cache.store(key("a", 1e-3), None, Some(probe.clone()));
        cache.store(key("b", 1e-3), None, Some(probe.clone()));
        // Touch "a" so "b" is the LRU victim when "c" arrives.
        assert!(cache
            .lookup_snapshot(
                "a",
                &key("a", 1e-3).region_lo_bits,
                &key("a", 1e-3).region_hi_bits
            )
            .is_some());
        cache.store(key("c", 1e-3), None, Some(probe));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(!cache.contains_result(&key("b", 1e-3)));
        let kb = key("b", 1e-3);
        assert!(cache
            .lookup_snapshot(&kb.integrand_id, &kb.region_lo_bits, &kb.region_hi_bits)
            .is_none());
    }

    #[test]
    fn oversized_entry_is_dropped_not_cached() {
        let cache = ResultCache::new(64);
        cache.store(key("big", 1e-3), None, Some(snapshot(1, 1024)));
        assert!(cache.is_empty());
        assert_eq!(cache.evictions(), 1);
        assert!(cache.bytes_used() <= cache.byte_budget());
    }

    #[test]
    fn peeks_do_not_perturb_lru_order() {
        let probe = snapshot(1, 64);
        let one_entry = entry_bytes(&key("a", 1e-3), &None, &Some(probe.clone()));
        let cache = ResultCache::new(one_entry * 2 + one_entry / 2);
        cache.store(key("a", 1e-3), None, Some(probe.clone()));
        cache.store(key("b", 1e-3), None, Some(probe.clone()));
        // Peek "a" (non-bumping): "a" must still be the LRU victim.
        let ka = key("a", 1e-3);
        assert!(cache
            .peek_warm_start(&ka.integrand_id, &ka.region_lo_bits, &ka.region_hi_bits)
            .is_some());
        assert!(!cache.contains_result(&ka));
        cache.store(key("c", 1e-3), None, Some(probe));
        let gone = cache.lookup_snapshot(&ka.integrand_id, &ka.region_lo_bits, &ka.region_hi_bits);
        assert!(
            gone.is_none(),
            "peeked entry should have been evicted first"
        );
    }
}
