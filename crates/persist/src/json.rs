//! Minimal JSON value type, serializer and parser.
//!
//! Snapshots and `ANALYZE_report.json` must be machine-readable without
//! pulling `serde` into the offline workspace, so both are built from this
//! `Value` type and serialized by hand.  (The module started life inside
//! `pagani-analyze` and moved here so the analyzer report and driver
//! snapshots share one implementation.)  The parser exists so the test
//! suites (and any downstream tooling) can prove emitted documents
//! round-trip: `parse(serialize(v)) == v` and `serialize(parse(s)) == s`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
///
/// Objects use a [`BTreeMap`], so serialization order is deterministic — the
/// report is byte-stable for identical analysis results.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; the analyzer only emits non-negative integers but the parser
    /// accepts any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with deterministically ordered keys.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Self {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialize with two-space indentation and a trailing newline.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(n) => {
                // Emit integers without a fractional part so counts and line
                // numbers read naturally.
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document.
///
/// # Errors
/// Returns a description of the first syntax error encountered.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                map.insert(key, parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let c = char::from_u32(hex)
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            c => {
                out.push(c);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_value() {
        let v = Value::obj([
            ("name", Value::Str("pagani-analyze".into())),
            ("count", Value::Num(3.0)),
            (
                "items",
                Value::Arr(vec![
                    Value::Bool(true),
                    Value::Null,
                    Value::Str("a\"b\n".into()),
                ]),
            ),
        ]);
        let text = v.to_json();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
    }
}
