//! Semantics of the persistent worker pool underneath [`Device`]:
//!
//! * the `worker_threads` cap is honored by parallel calls *nested inside
//!   kernel bodies* (the regression the pool rewrite fixed — the old
//!   spawn-per-call substrate kept the cap in a thread-local that spawned
//!   workers never inherited),
//! * pool execution is deterministic and order-preserving: `map.collect`,
//!   `sum` and `reduce` results are bit-identical across pool sizes and
//!   across repeated runs on the same pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use pagani_device::{reduce, Device, DeviceConfig};
use proptest::prelude::*;
use rayon::prelude::*;

/// Tracks the peak number of threads simultaneously inside a section.
#[derive(Default)]
struct Gauge {
    active: AtomicUsize,
    peak: AtomicUsize,
}

impl Gauge {
    fn enter(&self) {
        let now = self.active.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak.fetch_max(now, Ordering::SeqCst);
    }
    fn exit(&self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }
    fn peak(&self) -> usize {
        self.peak.load(Ordering::SeqCst)
    }
}

/// A slice comfortably above the `reduce` chunking threshold (4096), so the
/// nested `reduce::sum` call really does go through the parallel path.
fn big_values() -> Vec<f64> {
    (0..20_000)
        .map(|i| ((i * 2654435761_usize) % 997) as f64 / 13.0)
        .collect()
}

#[test]
fn nested_reduce_inside_kernel_body_respects_worker_threads_cap() {
    let device = Device::new(DeviceConfig::test_small().with_worker_threads(1));
    let values = big_values();
    let expected_bits = reduce::sum(&values).to_bits();

    let gauge = Gauge::default();
    let mut sums = vec![0.0f64; 8];
    device
        .launch_batch("nested.sum", 8, 1, &mut sums, |_ctx, slot| {
            // Inside a kernel body we must still be inside the device's
            // 1-thread pool, not the machine-wide default.
            assert_eq!(rayon::current_num_threads(), 1);
            // Observe the parallelism of a nested parallel call directly.
            (0..64).into_par_iter().for_each(|_| {
                gauge.enter();
                std::thread::sleep(Duration::from_micros(20));
                gauge.exit();
            });
            // And exercise the real nested workload from the issue: a
            // deterministic parallel reduction over a >CHUNK slice.
            slot[0] = reduce::sum(&values);
        })
        .unwrap();

    assert_eq!(
        gauge.peak(),
        1,
        "nested parallel call escaped the worker_threads(1) cap"
    );
    assert!(sums.iter().all(|&sum| sum.to_bits() == expected_bits));
}

#[test]
fn nested_parallelism_stays_within_a_multi_thread_cap() {
    let cap = 4;
    let device = Device::new(DeviceConfig::test_small().with_worker_threads(cap));
    let gauge = Gauge::default();
    device
        .launch("nested.capped", 8, |_ctx| {
            assert_eq!(rayon::current_num_threads(), cap);
            (0..32).into_par_iter().for_each(|_| {
                gauge.enter();
                std::thread::sleep(Duration::from_micros(20));
                gauge.exit();
            });
        })
        .unwrap();
    assert!(
        gauge.peak() >= 1 && gauge.peak() <= cap,
        "nested parallelism {} outside 1..={cap}",
        gauge.peak()
    );
}

/// Run `op` under a dedicated pool of every size in `caps` and assert all
/// outcomes are identical.
fn identical_across_pools<T, F>(caps: &[usize], op: F) -> T
where
    T: PartialEq + std::fmt::Debug + Send,
    F: Fn() -> T + Send + Sync,
{
    let mut outcomes: Vec<T> = caps
        .iter()
        .map(|&n| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .expect("pool build");
            pool.install(&op)
        })
        .collect();
    let first = outcomes.remove(0);
    for other in outcomes {
        assert_eq!(first, other, "pool size changed the result");
    }
    first
}

#[test]
fn device_launch_batch_is_identical_across_worker_counts() {
    let results: Vec<Vec<u64>> = [1usize, 2, 8]
        .iter()
        .map(|&n| {
            let device = Device::new(DeviceConfig::test_small().with_worker_threads(n));
            let mut out = vec![0.0f64; 3000];
            device
                .launch_batch("det.map", 3000, 1, &mut out, |ctx, slot| {
                    slot[0] = (ctx.block_idx as f64).sin() * 1e9;
                })
                .unwrap();
            out.iter().map(|v| v.to_bits()).collect()
        })
        .collect();
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_sum_is_bit_identical_across_pool_sizes(
        values in proptest::collection::vec(-1e6f64..1e6, 0..12_000),
    ) {
        let bits = identical_across_pools(&[1, 2, 8], || reduce::sum(&values).to_bits());
        // And across repeated runs in the same (global) context.
        prop_assert_eq!(reduce::sum(&values).to_bits(), reduce::sum(&values).to_bits());
        let _ = bits;
    }

    #[test]
    fn prop_map_collect_preserves_order_across_pool_sizes(
        values in proptest::collection::vec(-1e3f64..1e3, 0..6000),
    ) {
        let collected = identical_across_pools(&[1, 2, 8], || {
            values
                .par_chunks(97)
                .map(|chunk| chunk.iter().map(|v| v * 1.5).sum::<f64>().to_bits())
                .collect::<Vec<u64>>()
        });
        let sequential: Vec<u64> = values
            .chunks(97)
            .map(|chunk| chunk.iter().map(|v| v * 1.5).sum::<f64>().to_bits())
            .collect();
        prop_assert_eq!(collected, sequential);
    }

    #[test]
    fn prop_reduce_is_bit_identical_across_pool_sizes(
        values in proptest::collection::vec(-1e9f64..1e9, 1..8000),
    ) {
        let reduced = identical_across_pools(&[1, 2, 8], || {
            values
                .par_chunks(61)
                .map(|chunk| chunk.iter().copied().fold(f64::MIN, f64::max))
                .reduce(|| f64::MIN, f64::max)
                .to_bits()
        });
        let expected = values.iter().copied().fold(f64::MIN, f64::max).to_bits();
        prop_assert_eq!(reduced, expected);
    }

    #[test]
    fn prop_repeated_runs_on_one_pool_are_bit_identical(
        values in proptest::collection::vec(-1e6f64..1e6, 0..8000),
        cap in 1usize..9,
    ) {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(cap)
            .build()
            .expect("pool build");
        let run = || pool.install(|| reduce::dot(&values, &values).to_bits());
        prop_assert_eq!(run(), run());
    }
}
