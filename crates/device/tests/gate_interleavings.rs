//! Loom-lite interleaving coverage for the `FairGate` wakeup protocol.
//!
//! `FairGate::notify_waiters` deliberately locks (and immediately drops) the
//! gate mutex before calling `notify_all`.  That handshake is what makes
//! out-of-band cancellation race-free: a waiter in `acquire_unless` checks
//! its cancellation predicate *while holding the mutex* and parks on the
//! condvar atomically with releasing it, so a canceller that takes the lock
//! first is guaranteed its flag is seen, and one that takes it second is
//! guaranteed its notification lands on a parked waiter.  Skipping the lock
//! re-opens the classic lost-wakeup window: flag set and notify delivered
//! between the waiter's check and its park.
//!
//! Real-thread tests cannot pin interleavings, so this file checks the
//! protocol two ways:
//!
//! 1. An exhaustive model checker over a step-level model of one waiter and
//!    one signaller.  Every interleaving of the locked protocol must
//!    terminate; the unlocked variant must reach a demonstrable lost-wakeup
//!    state (proving the model is sharp enough to see the bug the lock
//!    prevents).  Spurious wakeups are deliberately absent from the model:
//!    correctness must not depend on them.
//! 2. Real-`FairGate` schedules that sequence the external events (cancel,
//!    notify, permit drop) in every order, asserting the waiter always
//!    terminates within a timeout and the gate drains.
//!
//! The lock-order discipline these tests lean on is enforced statically by
//! analyzer rule R1 (`cargo run -p pagani-analyze -- --workspace`).

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pagani_device::FairGate;

// ---------------------------------------------------------------------------
// Part 1: exhaustive model checker.
// ---------------------------------------------------------------------------

/// How the signaller publishes its event relative to the gate mutex.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Protocol {
    /// `notify_waiters` as shipped: set flag, lock+unlock, notify.
    LockedNotify,
    /// The buggy variant: set flag, notify — never touching the mutex.
    UnlockedNotify,
    /// `GatePermit::drop`: mutate shared state *under* the mutex, unlock,
    /// notify.  The mutation-under-lock is what makes the later unlocked
    /// notify safe here.
    ReleaseUnderLock,
}

/// One interleaving state of the two-thread model.  The waiter models the
/// `acquire_unless` loop: lock, check the wake condition, park atomically.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    /// Which thread owns the mutex (0 = waiter, 1 = signaller).
    mutex: Option<u8>,
    /// The waiter's wake condition (cancellation flag or released permit).
    cond: bool,
    /// Waiter program counter: 0 lock, 1 check, 2 unlock-and-finish,
    /// 3 park, 4 done, 5 woken-reacquire.
    waiter: u8,
    /// Signaller program counter (meaning depends on the protocol).
    signaller: u8,
    /// Waiter is parked on the condvar.
    parked: bool,
}

const INITIAL: State = State {
    mutex: None,
    cond: false,
    waiter: 0,
    signaller: 0,
    parked: false,
};

fn waiter_steps(s: State) -> Option<State> {
    let mut n = s;
    match s.waiter {
        0 if s.mutex.is_none() => {
            n.mutex = Some(0);
            n.waiter = 1;
        }
        1 => n.waiter = if s.cond { 2 } else { 3 },
        2 => {
            n.mutex = None;
            n.waiter = 4;
        }
        // Park: release the mutex and enter the wait set in one step —
        // exactly the atomicity `Condvar::wait` guarantees.
        3 => {
            n.mutex = None;
            n.parked = true;
            n.waiter = 5;
        }
        5 if !s.parked && s.mutex.is_none() => {
            // Woken: re-acquire and re-check.
            n.mutex = Some(0);
            n.waiter = 1;
        }
        _ => return None,
    }
    Some(n)
}

fn signaller_steps(s: State, protocol: Protocol) -> Option<State> {
    let mut n = s;
    match protocol {
        Protocol::LockedNotify => match s.signaller {
            // flag is an external atomic: set outside the mutex.
            0 => {
                n.cond = true;
                n.signaller = 1;
            }
            1 if s.mutex.is_none() => {
                n.mutex = Some(1);
                n.signaller = 2;
            }
            2 => {
                n.mutex = None;
                n.signaller = 3;
            }
            3 => {
                n.parked = false;
                n.signaller = 4;
            }
            _ => return None,
        },
        Protocol::UnlockedNotify => match s.signaller {
            0 => {
                n.cond = true;
                n.signaller = 1;
            }
            1 => {
                n.parked = false;
                n.signaller = 4;
            }
            _ => return None,
        },
        Protocol::ReleaseUnderLock => match s.signaller {
            0 if s.mutex.is_none() => {
                n.mutex = Some(1);
                n.signaller = 1;
            }
            // The permit release mutates gate state while holding the mutex.
            1 => {
                n.cond = true;
                n.signaller = 2;
            }
            2 => {
                n.mutex = None;
                n.signaller = 3;
            }
            3 => {
                n.parked = false;
                n.signaller = 4;
            }
            _ => return None,
        },
    }
    Some(n)
}

/// Explore every interleaving; return the set of dead states (no thread can
/// step, not everyone finished).  An empty set proves the protocol is
/// lost-wakeup-free under the model.
fn explore(protocol: Protocol) -> Vec<State> {
    let mut seen: HashSet<State> = HashSet::new();
    let mut stuck = Vec::new();
    let mut stack = vec![INITIAL];
    while let Some(s) = stack.pop() {
        if !seen.insert(s) {
            continue;
        }
        let next: Vec<State> = [waiter_steps(s), signaller_steps(s, protocol)]
            .into_iter()
            .flatten()
            .collect();
        if next.is_empty() {
            let all_done = s.waiter == 4 && s.signaller == 4;
            if !all_done {
                stuck.push(s);
            }
            continue;
        }
        stack.extend(next);
    }
    stuck
}

#[test]
fn locked_notify_has_no_lost_wakeup_in_any_interleaving() {
    let stuck = explore(Protocol::LockedNotify);
    assert!(
        stuck.is_empty(),
        "locked notify_waiters protocol reached {} dead state(s)",
        stuck.len()
    );
}

#[test]
fn unlocked_notify_demonstrably_loses_the_wakeup() {
    // Sanity check on the model itself: without the lock handshake the
    // canceller can slip its flag-set and notify between the waiter's check
    // and its park, leaving the waiter parked forever.
    let stuck = explore(Protocol::UnlockedNotify);
    assert!(
        !stuck.is_empty(),
        "model failed to reproduce the lost-wakeup the lock prevents"
    );
    assert!(
        stuck.iter().all(|s| s.parked && s.cond && s.signaller == 4),
        "every dead state should be: signaller done, waiter parked, flag set"
    );
}

#[test]
fn permit_release_mutating_under_the_lock_is_safe_with_unlocked_notify() {
    // `GatePermit::drop` notifies *after* unlocking, which is sound only
    // because the release mutates gate state while holding the mutex: a
    // waiter that misses the notification must have checked before the
    // mutation, and then its park serialized before the release's lock.
    let stuck = explore(Protocol::ReleaseUnderLock);
    assert!(
        stuck.is_empty(),
        "permit-release protocol reached {} dead state(s)",
        stuck.len()
    );
}

// ---------------------------------------------------------------------------
// Part 2: real-gate schedules over permuted external event orders.
// ---------------------------------------------------------------------------

const STEP_TIMEOUT: Duration = Duration::from_secs(10);

/// Join with a deadline so a lost wakeup fails the test instead of hanging it.
fn join_within<T>(done: &AtomicBool, handle: std::thread::JoinHandle<T>, what: &str) -> T {
    let deadline = Instant::now() + STEP_TIMEOUT;
    while !done.load(Ordering::SeqCst) {
        assert!(Instant::now() < deadline, "{what} did not terminate");
        std::thread::yield_now();
    }
    handle.join().expect(what)
}

/// Spawn a cancellable waiter on `gate` and report whether it was admitted.
struct Waiter {
    cancel: Arc<AtomicBool>,
    done: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<bool>,
}

fn spawn_waiter(gate: &Arc<FairGate>) -> Waiter {
    let cancel = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));
    let handle = {
        let (gate, cancel, done) = (Arc::clone(gate), Arc::clone(&cancel), Arc::clone(&done));
        std::thread::spawn(move || {
            let admitted = gate
                .acquire_unless(|| cancel.load(Ordering::SeqCst))
                .is_some();
            done.store(true, Ordering::SeqCst);
            admitted
        })
    };
    Waiter {
        cancel,
        done,
        handle,
    }
}

fn wait_for_in_flight(gate: &FairGate, n: usize) {
    let deadline = Instant::now() + STEP_TIMEOUT;
    while gate.in_flight() < n {
        assert!(Instant::now() < deadline, "waiter never joined the line");
        std::thread::yield_now();
    }
}

/// The three external events that can race on a contended gate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Event {
    SetCancel,
    Notify,
    DropPermit,
}

/// Run one schedule: permit held, waiter parked, then the events in `order`.
/// Liveness (the waiter terminates) must hold for every order; the admission
/// outcome depends on whether the cancel flag was set before the freed slot
/// reached the waiter, so only invariants — not the outcome — are asserted.
fn run_schedule(order: [Event; 3]) {
    let gate = Arc::new(FairGate::new(1));
    let mut permit = Some(gate.acquire());
    let waiter = spawn_waiter(&gate);
    wait_for_in_flight(&gate, 2);
    for event in order {
        match event {
            Event::SetCancel => waiter.cancel.store(true, Ordering::SeqCst),
            Event::Notify => gate.notify_waiters(),
            Event::DropPermit => drop(permit.take()),
        }
    }
    let admitted = join_within(&waiter.done, waiter.handle, "cancellable waiter");
    // Admission vs cancellation is schedule-dependent (the waiter re-checks
    // its predicate before its ticket on every wake), so only the
    // schedule-independent invariants are asserted: the waiter terminated
    // (checked by join_within) and the line drains.
    let _ = admitted;
    drop(permit);
    assert_eq!(gate.in_flight(), 0, "gate did not drain after {order:?}");
    // The gate still hands out permits afterwards.
    drop(gate.acquire());
}

#[test]
fn waiter_terminates_under_every_external_event_order() {
    let events = [Event::SetCancel, Event::Notify, Event::DropPermit];
    // All 6 permutations of the three external events.
    for i in 0..3 {
        for j in 0..3 {
            if j == i {
                continue;
            }
            let k = 3 - i - j;
            run_schedule([events[i], events[j], events[k]]);
        }
    }
}

#[test]
fn cancel_before_notify_always_cancels_a_parked_waiter() {
    // The deterministic subcase of the schedule matrix: flag set, then the
    // locked notify, while the permit is still held — the waiter must leave
    // the line cancelled, never admitted.  This is the exact sequence the
    // model checker proves lost-wakeup-free.
    for _ in 0..100 {
        let gate = Arc::new(FairGate::new(1));
        let permit = gate.acquire();
        let waiter = spawn_waiter(&gate);
        wait_for_in_flight(&gate, 2);
        waiter.cancel.store(true, Ordering::SeqCst);
        gate.notify_waiters();
        let admitted = join_within(&waiter.done, waiter.handle, "cancelled waiter");
        assert!(!admitted, "waiter admitted despite cancel-before-notify");
        drop(permit);
        assert_eq!(gate.in_flight(), 0);
    }
}
