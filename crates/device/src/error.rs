//! Error types for the simulated device.

use std::fmt;

/// Result alias for device operations.
pub type DeviceResult<T> = Result<T, DeviceError>;

/// Errors raised by the simulated device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// An allocation request exceeded the remaining device-memory capacity.
    ///
    /// Carries the number of bytes requested and the number of bytes that were still
    /// available when the request was made.
    OutOfDeviceMemory {
        /// Bytes requested by the failed allocation.
        requested: usize,
        /// Bytes that were still available in the pool.
        available: usize,
    },
    /// A kernel was launched with an empty grid.
    EmptyLaunch {
        /// Name of the kernel that was launched.
        kernel: &'static str,
    },
    /// A launch configuration was invalid (e.g. zero threads per block).
    InvalidLaunchConfig {
        /// Human readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfDeviceMemory {
                requested,
                available,
            } => write!(
                f,
                "out of device memory: requested {requested} bytes, {available} bytes available"
            ),
            DeviceError::EmptyLaunch { kernel } => {
                write!(f, "kernel `{kernel}` launched with an empty grid")
            }
            DeviceError::InvalidLaunchConfig { reason } => {
                write!(f, "invalid launch configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_out_of_memory() {
        let e = DeviceError::OutOfDeviceMemory {
            requested: 1024,
            available: 512,
        };
        let s = e.to_string();
        assert!(s.contains("1024"));
        assert!(s.contains("512"));
    }

    #[test]
    fn display_empty_launch() {
        let e = DeviceError::EmptyLaunch { kernel: "evaluate" };
        assert!(e.to_string().contains("evaluate"));
    }

    #[test]
    fn display_invalid_config() {
        let e = DeviceError::InvalidLaunchConfig {
            reason: "zero threads per block".into(),
        };
        assert!(e.to_string().contains("zero threads"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = DeviceError::EmptyLaunch { kernel: "k" };
        let b = DeviceError::EmptyLaunch { kernel: "k" };
        assert_eq!(a, b);
    }
}
