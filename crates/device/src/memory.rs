//! Tracked device memory.
//!
//! The paper's evaluation hinges on what happens when the 16 GiB of V100 memory is
//! close to exhaustion: the two-phase baseline fails outright, while PAGANI triggers
//! its heuristic threshold classification to shed finished regions.  To reproduce that
//! behaviour the region lists of every integrator in this repository are allocated
//! through a [`MemoryPool`] whose capacity is part of the device configuration.
//!
//! A [`DeviceBuffer<T>`] is a plain `Vec<T>` whose backing bytes are charged against
//! the pool for its entire lifetime; dropping the buffer releases the charge.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{DeviceError, DeviceResult};

/// Snapshot of the pool occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryUsage {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Bytes currently allocated.
    pub used: usize,
    /// High-water mark of allocated bytes over the pool lifetime.
    pub peak: usize,
}

impl MemoryUsage {
    /// Bytes still available for allocation.
    #[must_use]
    pub fn available(&self) -> usize {
        self.capacity.saturating_sub(self.used)
    }

    /// Fraction of the capacity currently in use, in `[0, 1]`.
    #[must_use]
    pub fn utilisation(&self) -> f64 {
        if self.capacity == 0 {
            return 1.0;
        }
        self.used as f64 / self.capacity as f64
    }
}

#[derive(Debug)]
struct PoolInner {
    capacity: usize,
    used: AtomicUsize,
    peak: AtomicUsize,
    allocations: AtomicUsize,
    failed_allocations: AtomicUsize,
}

/// A byte-capacity-limited allocator standing in for device (HBM) memory.
///
/// The pool is cheap to clone (`Arc` internally); all clones share the same capacity
/// accounting, so a [`crate::Device`] and the buffers it hands out stay consistent.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    inner: Arc<PoolInner>,
}

impl MemoryPool {
    /// Create a pool with `capacity` bytes.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(PoolInner {
                capacity,
                used: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                allocations: AtomicUsize::new(0),
                failed_allocations: AtomicUsize::new(0),
            }),
        }
    }

    /// Pool capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Current occupancy snapshot.
    #[must_use]
    pub fn usage(&self) -> MemoryUsage {
        MemoryUsage {
            capacity: self.inner.capacity,
            used: self.inner.used.load(Ordering::Relaxed),
            peak: self.inner.peak.load(Ordering::Relaxed),
        }
    }

    /// Number of successful allocations made through this pool.
    #[must_use]
    pub fn allocation_count(&self) -> usize {
        self.inner.allocations.load(Ordering::Relaxed)
    }

    /// Number of allocation requests rejected for lack of capacity.
    #[must_use]
    pub fn failed_allocation_count(&self) -> usize {
        self.inner.failed_allocations.load(Ordering::Relaxed)
    }

    /// Whether a request for `bytes` additional bytes would currently succeed.
    #[must_use]
    pub fn can_allocate(&self, bytes: usize) -> bool {
        let used = self.inner.used.load(Ordering::Relaxed);
        used.checked_add(bytes)
            .is_some_and(|total| total <= self.inner.capacity)
    }

    /// Reserve `bytes` against the pool, failing with
    /// [`DeviceError::OutOfDeviceMemory`] if the capacity would be exceeded.
    fn reserve(&self, bytes: usize) -> DeviceResult<()> {
        let mut used = self.inner.used.load(Ordering::Relaxed);
        loop {
            let Some(next) = used.checked_add(bytes) else {
                self.inner
                    .failed_allocations
                    .fetch_add(1, Ordering::Relaxed);
                return Err(DeviceError::OutOfDeviceMemory {
                    requested: bytes,
                    available: self.inner.capacity.saturating_sub(used),
                });
            };
            if next > self.inner.capacity {
                self.inner
                    .failed_allocations
                    .fetch_add(1, Ordering::Relaxed);
                return Err(DeviceError::OutOfDeviceMemory {
                    requested: bytes,
                    available: self.inner.capacity.saturating_sub(used),
                });
            }
            match self.inner.used.compare_exchange_weak(
                used,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.peak.fetch_max(next, Ordering::Relaxed);
                    self.inner.allocations.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                Err(actual) => used = actual,
            }
        }
    }

    fn release(&self, bytes: usize) {
        self.inner.used.fetch_sub(bytes, Ordering::AcqRel);
    }

    /// Allocate a zero-initialised buffer of `len` elements.
    ///
    /// # Errors
    /// Returns [`DeviceError::OutOfDeviceMemory`] if the backing bytes do not fit.
    pub fn alloc_zeroed<T: Default + Clone>(&self, len: usize) -> DeviceResult<DeviceBuffer<T>> {
        self.alloc_with(len, |_| T::default())
    }

    /// Allocate a buffer of `len` elements produced by `init(index)`.
    ///
    /// # Errors
    /// Returns [`DeviceError::OutOfDeviceMemory`] if the backing bytes do not fit.
    pub fn alloc_with<T, F>(&self, len: usize, init: F) -> DeviceResult<DeviceBuffer<T>>
    where
        F: FnMut(usize) -> T,
    {
        let bytes = len * std::mem::size_of::<T>();
        self.reserve(bytes)?;
        let data: Vec<T> = (0..len).map(init).collect();
        Ok(DeviceBuffer {
            data,
            charged_bytes: bytes,
            pool: self.clone(),
        })
    }

    /// Allocate a buffer by copying `src`.
    ///
    /// # Errors
    /// Returns [`DeviceError::OutOfDeviceMemory`] if the backing bytes do not fit.
    pub fn alloc_from_slice<T: Clone>(&self, src: &[T]) -> DeviceResult<DeviceBuffer<T>> {
        let bytes = std::mem::size_of_val(src);
        self.reserve(bytes)?;
        Ok(DeviceBuffer {
            data: src.to_vec(),
            charged_bytes: bytes,
            pool: self.clone(),
        })
    }

    /// Allocate a buffer by taking ownership of `data`, charging its capacity.
    ///
    /// # Errors
    /// Returns [`DeviceError::OutOfDeviceMemory`] if the backing bytes do not fit.
    pub fn adopt_vec<T>(&self, data: Vec<T>) -> DeviceResult<DeviceBuffer<T>> {
        let bytes = data.len() * std::mem::size_of::<T>();
        self.reserve(bytes)?;
        Ok(DeviceBuffer {
            data,
            charged_bytes: bytes,
            pool: self.clone(),
        })
    }
}

/// A typed allocation charged against a [`MemoryPool`].
///
/// Dereferences to a slice; the charge is released when the buffer is dropped.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    charged_bytes: usize,
    pool: MemoryPool,
}

impl<T> DeviceBuffer<T> {
    /// Number of elements in the buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes charged against the pool by this buffer.
    #[must_use]
    pub fn charged_bytes(&self) -> usize {
        self.charged_bytes
    }

    /// Immutable view of the elements.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the elements.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the buffer and return the underlying `Vec`, releasing the charge.
    #[must_use]
    pub fn into_vec(mut self) -> Vec<T> {
        std::mem::take(&mut self.data)
    }
}

impl<T> std::ops::Deref for DeviceBuffer<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T> std::ops::DerefMut for DeviceBuffer<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.pool.release(self.charged_bytes);
    }
}

/// Most retired vectors a [`VecShelf`] retains before it starts dropping the
/// smallest ones.  Bounds host memory held by idle shelves.
const MAX_SHELVED: usize = 32;

/// A free-list of retired `Vec<T>` backing storage: the buffer-recycling
/// primitive behind the scratch arenas of the batch execution engine.
///
/// Shelved storage is **host capacity only** and is never charged against a
/// [`MemoryPool`]: a [`DeviceBuffer`] retired through [`VecShelf::retire`]
/// first releases its pool charge (via [`DeviceBuffer::into_vec`]), so pool
/// accounting — and every memory-pressure heuristic built on it — behaves
/// exactly as if the buffer had been freed and a later reuse were a fresh
/// allocation.  What recycling saves is host allocator traffic: [`VecShelf::take`]
/// hands back retained capacity instead of growing a new `Vec` from nothing,
/// which is the dominant per-iteration cost of the simulated kernels.
///
/// `take` is deterministic best-fit, so recycling never changes computed
/// values — a recycled vector is always cleared and refilled by its consumer.
#[derive(Debug)]
pub struct VecShelf<T> {
    free: Mutex<Vec<Vec<T>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<T> Default for VecShelf<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> VecShelf<T> {
    /// Create an empty shelf.
    #[must_use]
    pub fn new() -> Self {
        Self {
            free: Mutex::new(Vec::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Take an empty vector with at least `capacity` reserved, reusing retired
    /// storage when a large-enough vector is shelved (best fit); otherwise a
    /// freshly allocated vector is returned and a miss is counted.
    #[must_use]
    pub fn take(&self, capacity: usize) -> Vec<T> {
        let mut free = self.free.lock();
        let best = free
            .iter()
            .enumerate()
            .filter(|(_, v)| v.capacity() >= capacity)
            .min_by_key(|(_, v)| v.capacity())
            .map(|(i, _)| i);
        match best {
            Some(i) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                free.swap_remove(i)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                drop(free);
                Vec::with_capacity(capacity)
            }
        }
    }

    /// Shelve `storage` for reuse.  The vector is cleared; if the shelf is
    /// full, the smallest retained vector is dropped to make room (or the
    /// incoming one, when it is smaller still).
    pub fn put(&self, mut storage: Vec<T>) {
        if storage.capacity() == 0 {
            return;
        }
        storage.clear();
        let mut free = self.free.lock();
        if free.len() >= MAX_SHELVED {
            let smallest = free
                .iter()
                .enumerate()
                .min_by_key(|(_, v)| v.capacity())
                .map(|(i, _)| i);
            match smallest {
                Some(i) if free[i].capacity() < storage.capacity() => {
                    free.swap_remove(i);
                }
                _ => return,
            }
        }
        free.push(storage);
    }

    /// Retire a device buffer: release its pool charge and shelve its backing
    /// storage for reuse.
    pub fn retire(&self, buffer: DeviceBuffer<T>) {
        self.put(buffer.into_vec());
    }

    /// Number of `take` calls served from retired storage.
    #[must_use]
    pub fn reuse_hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of `take` calls that had to allocate fresh storage.
    #[must_use]
    pub fn reuse_misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of vectors currently shelved.
    #[must_use]
    pub fn shelved(&self) -> usize {
        self.free.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIB: usize = 1024;

    #[test]
    fn allocation_charges_and_releases() {
        let pool = MemoryPool::new(64 * KIB);
        assert_eq!(pool.usage().used, 0);
        {
            let buf = pool.alloc_zeroed::<f64>(1024).unwrap();
            assert_eq!(buf.len(), 1024);
            assert_eq!(pool.usage().used, 8 * KIB);
            assert_eq!(buf.charged_bytes(), 8 * KIB);
        }
        assert_eq!(pool.usage().used, 0);
        assert_eq!(pool.usage().peak, 8 * KIB);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let pool = MemoryPool::new(KIB);
        let err = pool.alloc_zeroed::<f64>(1024).unwrap_err();
        match err {
            DeviceError::OutOfDeviceMemory {
                requested,
                available,
            } => {
                assert_eq!(requested, 8 * KIB);
                assert_eq!(available, KIB);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(pool.failed_allocation_count(), 1);
    }

    #[test]
    fn can_allocate_reflects_occupancy() {
        let pool = MemoryPool::new(16);
        assert!(pool.can_allocate(16));
        let _buf = pool.alloc_zeroed::<u8>(8).unwrap();
        assert!(pool.can_allocate(8));
        assert!(!pool.can_allocate(9));
    }

    #[test]
    fn alloc_with_initialises_by_index() {
        let pool = MemoryPool::new(KIB);
        let buf = pool.alloc_with(10, |i| i as u32 * 3).unwrap();
        assert_eq!(buf.as_slice()[4], 12);
    }

    #[test]
    fn alloc_from_slice_copies() {
        let pool = MemoryPool::new(KIB);
        let buf = pool.alloc_from_slice(&[1.0f64, 2.0, 3.0]).unwrap();
        assert_eq!(buf.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(pool.usage().used, 24);
    }

    #[test]
    fn adopt_vec_charges_length() {
        let pool = MemoryPool::new(KIB);
        let buf = pool.adopt_vec(vec![0u16; 100]).unwrap();
        assert_eq!(buf.charged_bytes(), 200);
        drop(buf);
        assert_eq!(pool.usage().used, 0);
    }

    #[test]
    fn into_vec_releases_charge() {
        let pool = MemoryPool::new(KIB);
        let buf = pool.alloc_zeroed::<u8>(100).unwrap();
        let v = buf.into_vec();
        assert_eq!(v.len(), 100);
        assert_eq!(pool.usage().used, 0);
    }

    #[test]
    fn clones_share_accounting() {
        let pool = MemoryPool::new(KIB);
        let clone = pool.clone();
        let _buf = clone.alloc_zeroed::<u8>(512).unwrap();
        assert_eq!(pool.usage().used, 512);
    }

    #[test]
    fn utilisation_and_available() {
        let pool = MemoryPool::new(1000);
        let _buf = pool.alloc_zeroed::<u8>(250).unwrap();
        let usage = pool.usage();
        assert_eq!(usage.available(), 750);
        assert!((usage.utilisation() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_pool_rejects_everything() {
        let pool = MemoryPool::new(0);
        assert!(pool.alloc_zeroed::<u8>(1).is_err());
        assert!((pool.usage().utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shelf_reuses_retired_capacity() {
        let shelf = VecShelf::<f64>::new();
        let mut v = shelf.take(100);
        assert_eq!(shelf.reuse_misses(), 1);
        v.extend(std::iter::repeat_n(1.0, 100));
        let cap = v.capacity();
        shelf.put(v);
        assert_eq!(shelf.shelved(), 1);
        let reused = shelf.take(50);
        assert_eq!(shelf.reuse_hits(), 1);
        assert!(reused.is_empty(), "shelved vectors are cleared");
        assert_eq!(reused.capacity(), cap);
        assert_eq!(shelf.shelved(), 0);
    }

    #[test]
    fn shelf_take_is_best_fit() {
        let shelf = VecShelf::<u8>::new();
        shelf.put(vec![0u8; 1000]);
        shelf.put(vec![0u8; 10]);
        let v = shelf.take(5);
        assert!(
            v.capacity() >= 5 && v.capacity() < 1000,
            "best fit picks the small vector"
        );
        let big = shelf.take(500);
        assert!(big.capacity() >= 1000);
        assert_eq!(shelf.reuse_hits(), 2);
    }

    #[test]
    fn shelf_too_small_storage_is_a_miss() {
        let shelf = VecShelf::<u8>::new();
        shelf.put(vec![0u8; 4]);
        let v = shelf.take(64);
        assert!(v.capacity() >= 64);
        assert_eq!(shelf.reuse_misses(), 1);
        assert_eq!(shelf.shelved(), 1, "the too-small vector stays shelved");
    }

    #[test]
    fn shelf_is_bounded() {
        let shelf = VecShelf::<u8>::new();
        for i in 0..100 {
            shelf.put(vec![0u8; i + 1]);
        }
        assert!(shelf.shelved() <= super::MAX_SHELVED);
    }

    #[test]
    fn retiring_a_device_buffer_releases_its_charge() {
        let pool = MemoryPool::new(KIB);
        let shelf = VecShelf::<f64>::new();
        let buf = pool.alloc_zeroed::<f64>(64).unwrap();
        assert_eq!(pool.usage().used, 512);
        shelf.retire(buf);
        assert_eq!(pool.usage().used, 0, "shelved storage is uncharged");
        assert_eq!(shelf.shelved(), 1);
    }

    #[test]
    fn empty_vectors_are_not_shelved() {
        let shelf = VecShelf::<f64>::new();
        shelf.put(Vec::new());
        assert_eq!(shelf.shelved(), 0);
    }

    #[test]
    fn concurrent_allocations_never_exceed_capacity() {
        use std::sync::Barrier;
        let pool = MemoryPool::new(64 * KIB);
        let barrier = Barrier::new(8);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    barrier.wait();
                    let mut held = Vec::new();
                    for _ in 0..100 {
                        if let Ok(buf) = pool.alloc_zeroed::<u8>(KIB) {
                            assert!(pool.usage().used <= pool.capacity());
                            held.push(buf);
                            if held.len() > 4 {
                                held.clear();
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(pool.usage().used, 0);
    }
}
