//! Tracked device memory.
//!
//! The paper's evaluation hinges on what happens when the 16 GiB of V100 memory is
//! close to exhaustion: the two-phase baseline fails outright, while PAGANI triggers
//! its heuristic threshold classification to shed finished regions.  To reproduce that
//! behaviour the region lists of every integrator in this repository are allocated
//! through a [`MemoryPool`] whose capacity is part of the device configuration.
//!
//! A [`DeviceBuffer<T>`] is a plain `Vec<T>` whose backing bytes are charged against
//! the pool for its entire lifetime; dropping the buffer releases the charge.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::error::{DeviceError, DeviceResult};

/// Snapshot of the pool occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryUsage {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Bytes currently allocated.
    pub used: usize,
    /// High-water mark of allocated bytes over the pool lifetime.
    pub peak: usize,
}

impl MemoryUsage {
    /// Bytes still available for allocation.
    #[must_use]
    pub fn available(&self) -> usize {
        self.capacity.saturating_sub(self.used)
    }

    /// Fraction of the capacity currently in use, in `[0, 1]`.
    #[must_use]
    pub fn utilisation(&self) -> f64 {
        if self.capacity == 0 {
            return 1.0;
        }
        self.used as f64 / self.capacity as f64
    }
}

#[derive(Debug)]
struct PoolInner {
    capacity: usize,
    used: AtomicUsize,
    peak: AtomicUsize,
    allocations: AtomicUsize,
    failed_allocations: AtomicUsize,
}

/// A byte-capacity-limited allocator standing in for device (HBM) memory.
///
/// The pool is cheap to clone (`Arc` internally); all clones share the same capacity
/// accounting, so a [`crate::Device`] and the buffers it hands out stay consistent.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    inner: Arc<PoolInner>,
}

impl MemoryPool {
    /// Create a pool with `capacity` bytes.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(PoolInner {
                capacity,
                used: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                allocations: AtomicUsize::new(0),
                failed_allocations: AtomicUsize::new(0),
            }),
        }
    }

    /// Pool capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Current occupancy snapshot.
    #[must_use]
    pub fn usage(&self) -> MemoryUsage {
        MemoryUsage {
            capacity: self.inner.capacity,
            used: self.inner.used.load(Ordering::Relaxed),
            peak: self.inner.peak.load(Ordering::Relaxed),
        }
    }

    /// Number of successful allocations made through this pool.
    #[must_use]
    pub fn allocation_count(&self) -> usize {
        self.inner.allocations.load(Ordering::Relaxed)
    }

    /// Number of allocation requests rejected for lack of capacity.
    #[must_use]
    pub fn failed_allocation_count(&self) -> usize {
        self.inner.failed_allocations.load(Ordering::Relaxed)
    }

    /// Whether a request for `bytes` additional bytes would currently succeed.
    #[must_use]
    pub fn can_allocate(&self, bytes: usize) -> bool {
        let used = self.inner.used.load(Ordering::Relaxed);
        used.checked_add(bytes)
            .is_some_and(|total| total <= self.inner.capacity)
    }

    /// Reserve `bytes` against the pool, failing with
    /// [`DeviceError::OutOfDeviceMemory`] if the capacity would be exceeded.
    fn reserve(&self, bytes: usize) -> DeviceResult<()> {
        let mut used = self.inner.used.load(Ordering::Relaxed);
        loop {
            let Some(next) = used.checked_add(bytes) else {
                self.inner
                    .failed_allocations
                    .fetch_add(1, Ordering::Relaxed);
                return Err(DeviceError::OutOfDeviceMemory {
                    requested: bytes,
                    available: self.inner.capacity.saturating_sub(used),
                });
            };
            if next > self.inner.capacity {
                self.inner
                    .failed_allocations
                    .fetch_add(1, Ordering::Relaxed);
                return Err(DeviceError::OutOfDeviceMemory {
                    requested: bytes,
                    available: self.inner.capacity.saturating_sub(used),
                });
            }
            match self.inner.used.compare_exchange_weak(
                used,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.peak.fetch_max(next, Ordering::Relaxed);
                    self.inner.allocations.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                Err(actual) => used = actual,
            }
        }
    }

    fn release(&self, bytes: usize) {
        self.inner.used.fetch_sub(bytes, Ordering::AcqRel);
    }

    /// Allocate a zero-initialised buffer of `len` elements.
    ///
    /// # Errors
    /// Returns [`DeviceError::OutOfDeviceMemory`] if the backing bytes do not fit.
    pub fn alloc_zeroed<T: Default + Clone>(&self, len: usize) -> DeviceResult<DeviceBuffer<T>> {
        self.alloc_with(len, |_| T::default())
    }

    /// Allocate a buffer of `len` elements produced by `init(index)`.
    ///
    /// # Errors
    /// Returns [`DeviceError::OutOfDeviceMemory`] if the backing bytes do not fit.
    pub fn alloc_with<T, F>(&self, len: usize, init: F) -> DeviceResult<DeviceBuffer<T>>
    where
        F: FnMut(usize) -> T,
    {
        let bytes = len * std::mem::size_of::<T>();
        self.reserve(bytes)?;
        let data: Vec<T> = (0..len).map(init).collect();
        Ok(DeviceBuffer {
            data,
            charged_bytes: bytes,
            pool: self.clone(),
        })
    }

    /// Allocate a buffer by copying `src`.
    ///
    /// # Errors
    /// Returns [`DeviceError::OutOfDeviceMemory`] if the backing bytes do not fit.
    pub fn alloc_from_slice<T: Clone>(&self, src: &[T]) -> DeviceResult<DeviceBuffer<T>> {
        let bytes = std::mem::size_of_val(src);
        self.reserve(bytes)?;
        Ok(DeviceBuffer {
            data: src.to_vec(),
            charged_bytes: bytes,
            pool: self.clone(),
        })
    }

    /// Allocate a buffer by taking ownership of `data`, charging its capacity.
    ///
    /// # Errors
    /// Returns [`DeviceError::OutOfDeviceMemory`] if the backing bytes do not fit.
    pub fn adopt_vec<T>(&self, data: Vec<T>) -> DeviceResult<DeviceBuffer<T>> {
        let bytes = data.len() * std::mem::size_of::<T>();
        self.reserve(bytes)?;
        Ok(DeviceBuffer {
            data,
            charged_bytes: bytes,
            pool: self.clone(),
        })
    }
}

/// A typed allocation charged against a [`MemoryPool`].
///
/// Dereferences to a slice; the charge is released when the buffer is dropped.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    charged_bytes: usize,
    pool: MemoryPool,
}

impl<T> DeviceBuffer<T> {
    /// Number of elements in the buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes charged against the pool by this buffer.
    #[must_use]
    pub fn charged_bytes(&self) -> usize {
        self.charged_bytes
    }

    /// Immutable view of the elements.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the elements.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the buffer and return the underlying `Vec`, releasing the charge.
    #[must_use]
    pub fn into_vec(mut self) -> Vec<T> {
        std::mem::take(&mut self.data)
    }
}

impl<T> std::ops::Deref for DeviceBuffer<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T> std::ops::DerefMut for DeviceBuffer<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.pool.release(self.charged_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIB: usize = 1024;

    #[test]
    fn allocation_charges_and_releases() {
        let pool = MemoryPool::new(64 * KIB);
        assert_eq!(pool.usage().used, 0);
        {
            let buf = pool.alloc_zeroed::<f64>(1024).unwrap();
            assert_eq!(buf.len(), 1024);
            assert_eq!(pool.usage().used, 8 * KIB);
            assert_eq!(buf.charged_bytes(), 8 * KIB);
        }
        assert_eq!(pool.usage().used, 0);
        assert_eq!(pool.usage().peak, 8 * KIB);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let pool = MemoryPool::new(KIB);
        let err = pool.alloc_zeroed::<f64>(1024).unwrap_err();
        match err {
            DeviceError::OutOfDeviceMemory {
                requested,
                available,
            } => {
                assert_eq!(requested, 8 * KIB);
                assert_eq!(available, KIB);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(pool.failed_allocation_count(), 1);
    }

    #[test]
    fn can_allocate_reflects_occupancy() {
        let pool = MemoryPool::new(16);
        assert!(pool.can_allocate(16));
        let _buf = pool.alloc_zeroed::<u8>(8).unwrap();
        assert!(pool.can_allocate(8));
        assert!(!pool.can_allocate(9));
    }

    #[test]
    fn alloc_with_initialises_by_index() {
        let pool = MemoryPool::new(KIB);
        let buf = pool.alloc_with(10, |i| i as u32 * 3).unwrap();
        assert_eq!(buf.as_slice()[4], 12);
    }

    #[test]
    fn alloc_from_slice_copies() {
        let pool = MemoryPool::new(KIB);
        let buf = pool.alloc_from_slice(&[1.0f64, 2.0, 3.0]).unwrap();
        assert_eq!(buf.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(pool.usage().used, 24);
    }

    #[test]
    fn adopt_vec_charges_length() {
        let pool = MemoryPool::new(KIB);
        let buf = pool.adopt_vec(vec![0u16; 100]).unwrap();
        assert_eq!(buf.charged_bytes(), 200);
        drop(buf);
        assert_eq!(pool.usage().used, 0);
    }

    #[test]
    fn into_vec_releases_charge() {
        let pool = MemoryPool::new(KIB);
        let buf = pool.alloc_zeroed::<u8>(100).unwrap();
        let v = buf.into_vec();
        assert_eq!(v.len(), 100);
        assert_eq!(pool.usage().used, 0);
    }

    #[test]
    fn clones_share_accounting() {
        let pool = MemoryPool::new(KIB);
        let clone = pool.clone();
        let _buf = clone.alloc_zeroed::<u8>(512).unwrap();
        assert_eq!(pool.usage().used, 512);
    }

    #[test]
    fn utilisation_and_available() {
        let pool = MemoryPool::new(1000);
        let _buf = pool.alloc_zeroed::<u8>(250).unwrap();
        let usage = pool.usage();
        assert_eq!(usage.available(), 750);
        assert!((usage.utilisation() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_pool_rejects_everything() {
        let pool = MemoryPool::new(0);
        assert!(pool.alloc_zeroed::<u8>(1).is_err());
        assert!((pool.usage().utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_allocations_never_exceed_capacity() {
        use std::sync::Barrier;
        let pool = MemoryPool::new(64 * KIB);
        let barrier = Barrier::new(8);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    barrier.wait();
                    let mut held = Vec::new();
                    for _ in 0..100 {
                        if let Ok(buf) = pool.alloc_zeroed::<u8>(KIB) {
                            assert!(pool.usage().used <= pool.capacity());
                            held.push(buf);
                            if held.len() > 4 {
                                held.clear();
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(pool.usage().used, 0);
    }
}
