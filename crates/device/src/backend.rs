//! The pluggable compute-backend seam.
//!
//! PAGANI's driver needs exactly four things from an execution substrate:
//! a batched kernel launch over flat buffers, memory alloc/free accounting,
//! reductions, and scans.  [`ComputeBackend`] captures that surface as a
//! dyn-safe trait so the driver — and everything above it — is written
//! against the trait, not against the simulated CPU device.  A wgpu-style
//! GPU backend slots in by implementing this trait; nothing in the driver
//! changes.
//!
//! Two implementations live here:
//!
//! * [`CpuBackend`] — the reference implementation: today's worker-pool
//!   device (wave serialisation at `max_resident_blocks`, per-kernel
//!   profiling, FIFO submission gate).  Its results are bit-identical
//!   across worker counts because every parallel step runs on the
//!   deterministic span-splitting pool.
//! * [`CountingBackend`] — a trivial wrapper that counts launches and lane
//!   bytes while delegating to an inner backend.  It exists to prove the
//!   trait is actually pluggable and to power tests that assert launch
//!   batching (one batched launch per driver generation).
//!
//! # The batched launch contract
//!
//! [`ComputeBackend::launch_batch`] is the structure-of-arrays calling
//! convention: the host passes one flat `f64` output buffer of
//! `grid_size * lanes` values and every block `i` writes only its own
//! `lanes`-length slot `out[i*lanes .. (i+1)*lanes]`.  Blocks never share
//! output cells, so the convention is race-free by construction and keeps
//! the blessed-reduction discipline (analyzer rule R3): cross-block
//! combining happens on the host via [`ComputeBackend::reduce_sum`] and
//! friends, never by accumulating into captured state inside the kernel.
//! `lanes == 0` (with an empty `out`) is the side-effect launch used by
//! kernels that write through their own captured buffers.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use rayon::prelude::*;

use crate::device::DeviceConfig;
use crate::error::{DeviceError, DeviceResult};
use crate::gate::FairGate;
use crate::launch::{BlockContext, LaunchConfig};
use crate::memory::MemoryPool;
use crate::profile::DeviceProfile;
use crate::{reduce, scan};

/// Upper bound on the number of contiguous multi-block chunks a wave's lane
/// buffer is split into for parallel dispatch.  Matches the span granularity
/// of the worker pool, so going finer buys no extra parallelism — it only
/// multiplies per-chunk bookkeeping.
const LANE_DISPATCH_SPANS: usize = 64;

/// Static description of a backend, mirroring the fields of
/// [`DeviceConfig`] that callers can rely on whatever the substrate is.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendCaps {
    /// Human-readable backend name, reported in benchmark output.
    pub name: String,
    /// Device memory capacity in bytes; every memory view allocated from
    /// the backend has this capacity.
    pub memory_capacity: usize,
    /// Maximum number of blocks resident at once; larger grids are
    /// serialised into waves of at most this many blocks.
    pub max_resident_blocks: usize,
    /// Default threads per block for launches that do not pick one.
    pub default_block_size: usize,
    /// Effective parallel width: how many blocks can make progress
    /// simultaneously (the worker-pool size on the CPU reference).
    pub workers: usize,
}

/// The four primitives PAGANI's driver needs from an execution substrate,
/// as a dyn-safe trait: batched launch, memory accounting, reduce, scan —
/// plus the profiling/admission plumbing that keeps [`crate::Device`]'s
/// existing surface working unchanged over `Arc<dyn ComputeBackend>`.
///
/// Implementations must be deterministic: for a fixed input, `launch_batch`
/// must produce bit-identical `out` contents regardless of how many workers
/// execute the grid, and the reduce/scan primitives must combine partial
/// results in an input-length-determined order.
pub trait ComputeBackend: Send + Sync {
    /// Static description of this backend.
    fn caps(&self) -> BackendCaps;

    /// Launch `config.grid_size` blocks; block `i` writes its results into
    /// the `lanes`-length slot `out[i*lanes .. (i+1)*lanes]` handed to
    /// `body` alongside the block context.  Blocks run in parallel, waves
    /// of at most `max_resident_blocks` at a time, and the call returns
    /// once the whole grid completed (bulk-synchronous).  `lanes == 0`
    /// with an empty `out` launches a pure side-effect kernel.
    ///
    /// # Errors
    /// [`DeviceError::EmptyLaunch`] for an empty grid;
    /// [`DeviceError::InvalidLaunchConfig`] for a zero block size or when
    /// `out.len() != grid_size * lanes`.
    fn launch_batch(
        &self,
        kernel: &'static str,
        config: LaunchConfig,
        lanes: usize,
        out: &mut [f64],
        body: &(dyn Fn(BlockContext, &mut [f64]) + Sync),
    ) -> DeviceResult<()>;

    /// A fresh, full-capacity memory-accounting view of the backend's
    /// device memory.  Every buffer a driver allocates is charged against
    /// a pool created here, so alloc/free accounting — and the
    /// memory-exhaustion behaviour the paper's experiments rely on — is a
    /// backend decision, not a host-side convention.
    fn alloc_memory_view(&self) -> MemoryPool;

    /// Deterministic sum reduction over `values`.
    fn reduce_sum(&self, values: &[f64]) -> f64;

    /// Deterministic sum of `values[i]` where `mask[i] != 0`.
    fn reduce_masked_sum(&self, values: &[f64], mask: &[u8]) -> f64;

    /// Deterministic `(min, max)` of `values`, `None` when empty.
    fn reduce_min_max(&self, values: &[f64]) -> Option<(f64, f64)>;

    /// Exclusive prefix scan of `values`; returns the scanned vector and
    /// the total sum.
    fn scan_exclusive(&self, values: &[usize]) -> (Vec<usize>, usize);

    /// Run a host-side section on the backend's workers and record its
    /// wall time in the profile under `kernel` (the Thrust-style
    /// primitives go through here so they show up in the §4.3.2
    /// breakdown).
    fn timed(&self, kernel: &str, op: &mut (dyn FnMut() + Send));

    /// The per-kernel wall-time profile shared by every view of this
    /// backend.
    fn profile(&self) -> &DeviceProfile;

    /// The FIFO admission gate shared by every view of this backend,
    /// sized to [`BackendCaps::workers`].
    fn gate(&self) -> &FairGate;
}

/// The reference [`ComputeBackend`]: a persistent CPU worker pool with
/// wave-serialised launches, deterministic reductions, per-kernel
/// profiling and a FIFO submission gate.
///
/// This is the substrate every simulated [`crate::Device`] runs on; it is
/// public so tests and custom wrappers (like [`CountingBackend`]) can
/// compose it explicitly via [`crate::Device::with_backend`].
pub struct CpuBackend {
    config: DeviceConfig,
    /// Shared with memory-isolated views so the §4.3.2 breakdown
    /// aggregates every job's kernels, wherever they ran.
    profile: DeviceProfile,
    /// `Some` when the config asked for a dedicated pool; `None` runs on
    /// the shared global pool.  All views of one backend launch onto the
    /// same workers, which is what keeps batch execution free of
    /// oversubscription.
    thread_pool: Option<Arc<rayon::ThreadPool>>,
    /// FIFO admission gate for concurrent job submitters, sized to the
    /// effective worker count.
    gate: FairGate,
}

impl CpuBackend {
    /// Build the reference backend from a device configuration.
    ///
    /// # Panics
    /// Panics if a dedicated worker pool was requested but could not be
    /// built (only under pathological resource exhaustion on the host).
    #[must_use]
    pub fn new(config: DeviceConfig) -> Self {
        let thread_pool = config.worker_threads.map(|threads| {
            Arc::new(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("failed to build device worker pool"),
            )
        });
        let workers = config
            .worker_threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        Self {
            config,
            profile: DeviceProfile::new(),
            thread_pool,
            gate: FairGate::new(workers),
        }
    }

    fn run_in_pool<R: Send>(&self, op: impl FnOnce() -> R + Send) -> R {
        match &self.thread_pool {
            Some(pool) => pool.install(op),
            None => op(),
        }
    }
}

impl ComputeBackend for CpuBackend {
    fn caps(&self) -> BackendCaps {
        BackendCaps {
            name: self.config.name.clone(),
            memory_capacity: self.config.memory_capacity,
            max_resident_blocks: self.config.max_resident_blocks,
            default_block_size: self.config.default_block_size,
            workers: self.gate.capacity(),
        }
    }

    fn launch_batch(
        &self,
        kernel: &'static str,
        config: LaunchConfig,
        lanes: usize,
        out: &mut [f64],
        body: &(dyn Fn(BlockContext, &mut [f64]) + Sync),
    ) -> DeviceResult<()> {
        if config.grid_size == 0 {
            return Err(DeviceError::EmptyLaunch { kernel });
        }
        if config.block_size == 0 {
            return Err(DeviceError::InvalidLaunchConfig {
                reason: format!("kernel `{kernel}` launched with zero threads per block"),
            });
        }
        let grid_size = config.grid_size;
        let block_size = config.block_size;
        let expected = grid_size.checked_mul(lanes);
        if expected != Some(out.len()) {
            return Err(DeviceError::InvalidLaunchConfig {
                reason: format!(
                    "kernel `{kernel}` launched with an output buffer of {} values; \
                     {grid_size} blocks x {lanes} lanes needs {}",
                    out.len(),
                    expected.map_or_else(|| "more than usize::MAX".to_owned(), |n| n.to_string()),
                ),
            });
        }
        let wave_cap = self.config.max_resident_blocks.max(1);
        let waves = grid_size.div_ceil(wave_cap);
        let ctx = |block_idx: usize| BlockContext {
            block_idx,
            grid_size,
            block_size,
        };
        let start = Instant::now();
        self.run_in_pool(|| {
            for wave in 0..waves {
                let wave_start = wave * wave_cap;
                let wave_end = grid_size.min(wave_start + wave_cap);
                if lanes == 0 {
                    (wave_start..wave_end)
                        .into_par_iter()
                        .for_each(|block_idx| body(ctx(block_idx), &mut []));
                } else {
                    // Hand the substrate coarse multi-block chunks rather than
                    // one slice per block: the slice-handle iterator pays per
                    // item, so a thousands-block wave as individual lanes-sized
                    // chunks would cost more in bookkeeping than the blocks
                    // themselves.  Chunk boundaries depend only on the wave
                    // length (never the pool size), so block execution order
                    // within a chunk — and therefore every lane value — is
                    // identical across worker counts.
                    let wave_blocks = wave_end - wave_start;
                    let span_blocks = wave_blocks.div_ceil(LANE_DISPATCH_SPANS);
                    out[wave_start * lanes..wave_end * lanes]
                        .par_chunks_mut(span_blocks * lanes)
                        .enumerate()
                        .for_each(|(span, chunk)| {
                            let base = wave_start + span * span_blocks;
                            for (j, slot) in chunk.chunks_mut(lanes).enumerate() {
                                body(ctx(base + j), slot);
                            }
                        });
                }
            }
        });
        self.profile
            .record_launch(kernel, grid_size, waves, start.elapsed());
        Ok(())
    }

    fn alloc_memory_view(&self) -> MemoryPool {
        MemoryPool::new(self.config.memory_capacity)
    }

    fn reduce_sum(&self, values: &[f64]) -> f64 {
        self.run_in_pool(|| reduce::sum(values))
    }

    fn reduce_masked_sum(&self, values: &[f64], mask: &[u8]) -> f64 {
        self.run_in_pool(|| reduce::masked_sum(values, mask))
    }

    fn reduce_min_max(&self, values: &[f64]) -> Option<(f64, f64)> {
        self.run_in_pool(|| reduce::min_max(values))
    }

    fn scan_exclusive(&self, values: &[usize]) -> (Vec<usize>, usize) {
        self.run_in_pool(|| scan::exclusive_scan(values))
    }

    fn timed(&self, kernel: &str, op: &mut (dyn FnMut() + Send)) {
        let start = Instant::now();
        self.run_in_pool(op);
        self.profile.record(kernel, 1, start.elapsed());
    }

    fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    fn gate(&self) -> &FairGate {
        &self.gate
    }
}

/// A trivial [`ComputeBackend`] that counts launches, lane bytes and
/// memory views while delegating all execution to an inner backend.
///
/// Wrapping the reference backend with this and asserting on the counters
/// is how tests prove launch batching — e.g. that the driver issues
/// exactly one batched `evaluate` launch per generation.
pub struct CountingBackend {
    inner: Arc<dyn ComputeBackend>,
    launches: Mutex<BTreeMap<&'static str, usize>>,
    lane_bytes: AtomicUsize,
    memory_views: AtomicUsize,
}

impl CountingBackend {
    /// Wrap `inner`, starting all counters at zero.
    #[must_use]
    pub fn new(inner: Arc<dyn ComputeBackend>) -> Self {
        Self {
            inner,
            launches: Mutex::new(BTreeMap::new()),
            lane_bytes: AtomicUsize::new(0),
            memory_views: AtomicUsize::new(0),
        }
    }

    /// Total number of successful `launch_batch` calls.
    #[must_use]
    pub fn launches(&self) -> usize {
        self.launches.lock().values().sum()
    }

    /// Number of successful `launch_batch` calls for one kernel name.
    #[must_use]
    pub fn launches_for(&self, kernel: &str) -> usize {
        self.launches.lock().get(kernel).copied().unwrap_or(0)
    }

    /// Total bytes of lane output transferred across all launches.
    #[must_use]
    pub fn lane_bytes(&self) -> usize {
        self.lane_bytes.load(Ordering::Relaxed)
    }

    /// Number of memory views handed out via `alloc_memory_view`.
    #[must_use]
    pub fn memory_views(&self) -> usize {
        self.memory_views.load(Ordering::Relaxed)
    }
}

impl ComputeBackend for CountingBackend {
    fn caps(&self) -> BackendCaps {
        self.inner.caps()
    }

    fn launch_batch(
        &self,
        kernel: &'static str,
        config: LaunchConfig,
        lanes: usize,
        out: &mut [f64],
        body: &(dyn Fn(BlockContext, &mut [f64]) + Sync),
    ) -> DeviceResult<()> {
        let bytes = std::mem::size_of_val(out);
        self.inner.launch_batch(kernel, config, lanes, out, body)?;
        *self.launches.lock().entry(kernel).or_insert(0) += 1;
        self.lane_bytes.fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }

    fn alloc_memory_view(&self) -> MemoryPool {
        self.memory_views.fetch_add(1, Ordering::Relaxed);
        self.inner.alloc_memory_view()
    }

    fn reduce_sum(&self, values: &[f64]) -> f64 {
        self.inner.reduce_sum(values)
    }

    fn reduce_masked_sum(&self, values: &[f64], mask: &[u8]) -> f64 {
        self.inner.reduce_masked_sum(values, mask)
    }

    fn reduce_min_max(&self, values: &[f64]) -> Option<(f64, f64)> {
        self.inner.reduce_min_max(values)
    }

    fn scan_exclusive(&self, values: &[usize]) -> (Vec<usize>, usize) {
        self.inner.scan_exclusive(values)
    }

    fn timed(&self, kernel: &str, op: &mut (dyn FnMut() + Send)) {
        self.inner.timed(kernel, op);
    }

    fn profile(&self) -> &DeviceProfile {
        self.inner.profile()
    }

    fn gate(&self) -> &FairGate {
        self.inner.gate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> CpuBackend {
        CpuBackend::new(DeviceConfig::test_small())
    }

    #[test]
    fn caps_mirror_the_config() {
        let backend = CpuBackend::new(DeviceConfig::test_small().with_worker_threads(2));
        let caps = backend.caps();
        assert_eq!(caps.name, "simulated-test");
        assert_eq!(caps.memory_capacity, 8 * (1 << 20));
        assert_eq!(caps.max_resident_blocks, 1 << 10);
        assert_eq!(caps.default_block_size, 64);
        assert_eq!(caps.workers, 2);
    }

    #[test]
    fn launch_batch_writes_each_block_slot_in_order() {
        let backend = cpu();
        let mut out = vec![0.0; 3 * 2560];
        backend
            .launch_batch(
                "batch",
                LaunchConfig::grid(2560),
                3,
                &mut out,
                &|ctx, slot| {
                    slot[0] = ctx.block_idx as f64;
                    slot[1] = ctx.grid_size as f64;
                    slot[2] = -1.0;
                },
            )
            .unwrap();
        for (i, slot) in out.chunks_exact(3).enumerate() {
            assert_eq!(slot, &[i as f64, 2560.0, -1.0]);
        }
        // 2560 blocks over a 1024-block cap: three waves, one launch.
        let t = backend.profile().kernel("batch").unwrap();
        assert_eq!((t.launches, t.blocks, t.waves), (1, 2560, 3));
    }

    #[test]
    fn launch_batch_rejects_mismatched_output_length() {
        let backend = cpu();
        let mut out = vec![0.0; 7];
        let err = backend
            .launch_batch("bad", LaunchConfig::grid(4), 2, &mut out, &|_, _| {})
            .unwrap_err();
        assert!(matches!(err, DeviceError::InvalidLaunchConfig { .. }));
    }

    #[test]
    fn zero_lane_launch_requires_an_empty_buffer() {
        let backend = cpu();
        let mut out = vec![0.0; 1];
        let err = backend
            .launch_batch("bad", LaunchConfig::grid(4), 0, &mut out, &|_, _| {})
            .unwrap_err();
        assert!(matches!(err, DeviceError::InvalidLaunchConfig { .. }));
        backend
            .launch_batch("ok", LaunchConfig::grid(4), 0, &mut [], &|_, slot| {
                assert!(slot.is_empty());
            })
            .unwrap();
    }

    #[test]
    fn launch_batch_is_bit_identical_across_worker_counts() {
        let reference: Vec<f64> = {
            let backend = CpuBackend::new(DeviceConfig::test_small().with_worker_threads(1));
            let mut out = vec![0.0; 3000];
            backend
                .launch_batch(
                    "det",
                    LaunchConfig::grid(3000),
                    1,
                    &mut out,
                    &|ctx, slot| {
                        let x = ctx.block_idx as f64;
                        slot[0] = (x * 0.1).sin() + (x * 0.01).cos();
                    },
                )
                .unwrap();
            out
        };
        for workers in [2, 8] {
            let backend = CpuBackend::new(DeviceConfig::test_small().with_worker_threads(workers));
            let mut out = vec![0.0; 3000];
            backend
                .launch_batch(
                    "det",
                    LaunchConfig::grid(3000),
                    1,
                    &mut out,
                    &|ctx, slot| {
                        let x = ctx.block_idx as f64;
                        slot[0] = (x * 0.1).sin() + (x * 0.01).cos();
                    },
                )
                .unwrap();
            for (a, b) in reference.iter().zip(&out) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn reduce_and_scan_delegate_to_the_deterministic_primitives() {
        let backend = cpu();
        let values: Vec<f64> = (0..5000).map(|i| i as f64 * 0.25).collect();
        assert_eq!(
            backend.reduce_sum(&values).to_bits(),
            reduce::sum(&values).to_bits()
        );
        let mask: Vec<u8> = (0..5000).map(|i| u8::from(i % 3 == 0)).collect();
        assert_eq!(
            backend.reduce_masked_sum(&values, &mask).to_bits(),
            reduce::masked_sum(&values, &mask).to_bits()
        );
        assert_eq!(backend.reduce_min_max(&values), Some((0.0, 4999.0 * 0.25)));
        let counts: Vec<usize> = (0..100).map(|i| i % 5).collect();
        assert_eq!(
            backend.scan_exclusive(&counts),
            scan::exclusive_scan(&counts)
        );
    }

    #[test]
    fn counting_backend_counts_and_stays_transparent() {
        let inner = Arc::new(cpu());
        let counting = CountingBackend::new(inner);
        let mut out = vec![0.0; 8];
        counting
            .launch_batch("a", LaunchConfig::grid(4), 2, &mut out, &|ctx, slot| {
                slot[0] = ctx.block_idx as f64;
                slot[1] = 2.0 * ctx.block_idx as f64;
            })
            .unwrap();
        counting
            .launch_batch("b", LaunchConfig::grid(2), 0, &mut [], &|_, _| {})
            .unwrap();
        assert_eq!(counting.launches(), 2);
        assert_eq!(counting.launches_for("a"), 1);
        assert_eq!(counting.launches_for("b"), 1);
        assert_eq!(counting.launches_for("missing"), 0);
        assert_eq!(counting.lane_bytes(), 8 * std::mem::size_of::<f64>());
        assert_eq!(out, vec![0.0, 0.0, 1.0, 2.0, 2.0, 4.0, 3.0, 6.0]);
        // Failed launches are not counted.
        let err = counting
            .launch_batch("a", LaunchConfig::grid(0), 0, &mut [], &|_, _| {})
            .unwrap_err();
        assert_eq!(err, DeviceError::EmptyLaunch { kernel: "a" });
        assert_eq!(counting.launches_for("a"), 1);
        // Memory views are counted and still full-capacity.
        let view = counting.alloc_memory_view();
        assert_eq!(counting.memory_views(), 1);
        assert_eq!(view.capacity(), counting.caps().memory_capacity);
    }

    #[test]
    fn timed_records_under_the_given_kernel() {
        let backend = cpu();
        let mut ran = false;
        backend.timed("host.section", &mut || ran = true);
        assert!(ran);
        assert!(backend.profile().kernel("host.section").is_some());
    }
}
