//! Simulated massively-parallel accelerator used as the execution substrate for the
//! PAGANI reproduction.
//!
//! The original PAGANI implementation (SC'21) targets an NVIDIA V100 through CUDA:
//! every sub-region is evaluated by one 256-thread block, the region lists live in
//! 16 GiB of device memory, and the post-processing steps are Thrust reductions and
//! prefix scans.  Stable Rust has no mature path to custom GPU kernels, so this crate
//! models the *behaviourally relevant* properties of that device on a multi-core CPU:
//!
//! * [`backend::ComputeBackend`] is the pluggable substrate seam: batched launches
//!   over flat buffers, memory accounting, reductions and scans as a dyn-safe trait,
//!   with [`backend::CpuBackend`] as the reference implementation.
//! * [`Device`] is a thin handle over an `Arc<dyn ComputeBackend>` plus a
//!   [`MemoryPool`] accounting view with a configurable byte capacity.  Every region
//!   list allocation is charged against the pool, so memory exhaustion — which drives
//!   several of the paper's experiments — happens exactly where it would on the GPU.
//! * [`Device::launch_batch`] runs a *grid* of independent blocks on a Rayon thread
//!   pool, mirroring the bulk-synchronous kernel-launch model (all blocks finish
//!   before the host continues), with each block writing its outputs into its own
//!   slot of one flat structure-of-arrays buffer.
//! * [`reduce`] and [`scan`] provide the Thrust-equivalent parallel primitives used by
//!   PAGANI's post-processing (sum reductions, dot-product reductions, min/max,
//!   exclusive prefix scans, stream compaction).
//! * [`profile::DeviceProfile`] accumulates per-kernel wall time so the §4.3.2
//!   performance breakdown can be reproduced.
//!
//! Nothing in this crate is specific to numerical integration; it is a small, general
//! bulk-synchronous-parallel substrate.

#![warn(missing_docs)]
#![warn(unreachable_pub)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod error;
pub mod gate;
pub mod launch;
pub mod memory;
pub mod profile;
pub mod reduce;
pub mod scan;

mod device;

pub use backend::{BackendCaps, ComputeBackend, CountingBackend, CpuBackend};
pub use device::{Device, DeviceConfig};
pub use error::{DeviceError, DeviceResult};
pub use gate::{FairGate, GatePermit};
pub use launch::{BlockContext, LaunchConfig};
pub use memory::{DeviceBuffer, MemoryPool, MemoryUsage, VecShelf};
pub use profile::{DeviceProfile, KernelTiming};
