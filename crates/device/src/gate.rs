//! FIFO admission control for concurrent job submitters.
//!
//! A device executes kernel launches from any number of host threads, but its
//! worker pool has a fixed width: admitting more concurrent *jobs* (full
//! integration runs) than there are workers buys no extra parallelism and only
//! adds queue contention.  [`FairGate`] is a ticket-ordered counting semaphore
//! that bounds the number of in-flight jobs at the device's worker count while
//! guaranteeing **fairness**: submitters are admitted strictly in arrival
//! order, so a steady stream of short jobs can never starve a long one that
//! arrived first.

use std::collections::BTreeSet;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Debug)]
struct GateState {
    /// Next ticket to hand out; tickets are admitted in issue order.
    next_ticket: u64,
    /// Number of vacated slots so far (permits released plus abandoned
    /// tickets whose turn has come).  Ticket `t` may proceed once
    /// `t < released + capacity`.
    released: u64,
    /// Tickets abandoned by cancelled waiters whose turn has *not* come yet.
    /// An abandoned ticket vacates its slot only once it enters the admission
    /// window — vacating earlier would admit a later ticket while every
    /// capacity permit is still held.
    abandoned: BTreeSet<u64>,
}

impl GateState {
    /// Fold abandoned tickets whose turn has come into `released`: each is
    /// admitted and instantly releases, in strict ticket order.
    fn vacate_due_abandoned(&mut self, capacity: u64) {
        while let Some(&front) = self.abandoned.first() {
            if front < self.released + capacity {
                self.abandoned.remove(&front);
                self.released += 1;
            } else {
                break;
            }
        }
    }
}

/// A first-in-first-out counting semaphore bounding concurrent submitters.
#[derive(Debug)]
pub struct FairGate {
    capacity: u64,
    state: Mutex<GateState>,
    turn: Condvar,
}

impl FairGate {
    /// Create a gate admitting at most `capacity` holders at once (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1) as u64,
            state: Mutex::new(GateState {
                next_ticket: 0,
                released: 0,
                abandoned: BTreeSet::new(),
            }),
            turn: Condvar::new(),
        }
    }

    /// Maximum number of concurrent permit holders.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Number of submitters currently holding or waiting for a permit.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        let state = lock(&self.state);
        (state.next_ticket - state.released) as usize - state.abandoned.len()
    }

    /// Block until admitted, in strict arrival order, and return the permit.
    /// Dropping the permit releases the slot and wakes the next ticket.
    pub fn acquire(&self) -> GatePermit<'_> {
        self.acquire_unless(|| false)
            .expect("an uncancellable acquire always produces a permit")
    }

    /// Like [`FairGate::acquire`], but give up and return `None` as soon as
    /// `cancelled` observes `true` while the caller is still waiting in line.
    ///
    /// The predicate is re-checked on every wake-up; an external canceller
    /// flips its flag and then calls [`FairGate::notify_waiters`] so the
    /// waiting submitter re-evaluates it promptly.  A waiter that gives up
    /// leaves the line without disturbing it: its abandoned ticket is admitted
    /// and instantly released *when its turn comes*, so abandonment can
    /// neither stall the tickets behind it nor oversubscribe the gate.
    pub fn acquire_unless(&self, mut cancelled: impl FnMut() -> bool) -> Option<GatePermit<'_>> {
        let mut state = lock(&self.state);
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        loop {
            if cancelled() {
                // Mark the ticket abandoned.  Its slot is vacated only once
                // the admission window reaches it — vacating immediately
                // would admit an earlier waiter while every permit is still
                // held (a capacity violation).
                state.abandoned.insert(ticket);
                state.vacate_due_abandoned(self.capacity);
                drop(state);
                self.turn.notify_all();
                return None;
            }
            if ticket < state.released + self.capacity {
                drop(state);
                return Some(GatePermit { gate: self });
            }
            state = self
                .turn
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Wake every waiting submitter so it re-checks its admission ticket and —
    /// for [`FairGate::acquire_unless`] callers — its cancellation predicate.
    ///
    /// Completion (permit drop) already notifies; this hook exists for
    /// out-of-band events such as job cancellation or service shutdown.
    ///
    /// The lock-then-notify handshake below is load-bearing: the exhaustive
    /// interleaving model in `tests/gate_interleavings.rs` shows that
    /// notifying without taking the lock loses the wakeup when the flag is
    /// set between a waiter's predicate check and its park.
    pub fn notify_waiters(&self) {
        // Serialise with the waiters' check-then-wait: once this lock is
        // acquired, every waiter has either seen the out-of-band event or is
        // already parked in `wait` where the notification reaches it.
        drop(lock(&self.state));
        self.turn.notify_all();
    }
}

/// RAII permit for one admitted submitter; dropping it admits the next ticket.
#[derive(Debug)]
pub struct GatePermit<'a> {
    gate: &'a FairGate,
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        let mut state = lock(&self.gate.state);
        state.released += 1;
        // Abandoned tickets the freed slot now reaches pass through instantly.
        state.vacate_due_abandoned(self.gate.capacity);
        drop(state);
        // Every waiter re-checks its own ticket; admission order is enforced
        // by the ticket comparison, not by wake order.
        self.gate.turn.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Barrier};
    use std::time::Duration;

    #[test]
    fn permits_up_to_capacity_without_blocking() {
        let gate = FairGate::new(3);
        let a = gate.acquire();
        let b = gate.acquire();
        let c = gate.acquire();
        assert_eq!(gate.in_flight(), 3);
        drop((a, b, c));
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let gate = FairGate::new(0);
        assert_eq!(gate.capacity(), 1);
        let permit = gate.acquire();
        drop(permit);
    }

    #[test]
    fn observed_concurrency_never_exceeds_capacity() {
        let gate = Arc::new(FairGate::new(2));
        let active = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (gate, active, peak, barrier) = (
                    Arc::clone(&gate),
                    Arc::clone(&active),
                    Arc::clone(&peak),
                    Arc::clone(&barrier),
                );
                std::thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..5 {
                        let _permit = gate.acquire();
                        let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_micros(200));
                        active.fetch_sub(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "peak {}",
            peak.load(Ordering::SeqCst)
        );
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn cancelled_acquire_returns_no_permit() {
        let gate = FairGate::new(1);
        assert!(gate.acquire_unless(|| true).is_none());
        assert_eq!(gate.in_flight(), 0, "abandoned ticket left the line");
        // The gate still works normally afterwards.
        let permit = gate.acquire();
        drop(permit);
    }

    #[test]
    fn abandoned_waiter_does_not_stall_or_oversubscribe_successors() {
        // Hold the single permit, park a cancellable waiter, cancel it, then
        // check that a later ticket is admitted exactly once the permit frees.
        let gate = Arc::new(FairGate::new(1));
        let first = gate.acquire();
        let cancel = Arc::new(AtomicUsize::new(0));
        let waiter = {
            let (gate, cancel) = (Arc::clone(&gate), Arc::clone(&cancel));
            std::thread::spawn(move || {
                gate.acquire_unless(|| cancel.load(Ordering::SeqCst) == 1)
                    .is_none()
            })
        };
        while gate.in_flight() < 2 {
            std::thread::yield_now();
        }
        cancel.store(1, Ordering::SeqCst);
        gate.notify_waiters();
        assert!(waiter.join().unwrap(), "cancelled waiter got a permit");
        // The abandoned slot must not count as a free permit while `first` is
        // still held...
        let blocked = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let _permit = gate.acquire();
            })
        };
        while gate.in_flight() < 2 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(gate.in_flight(), 2, "successor admitted while permit held");
        // ...and releasing the real permit admits the successor.
        drop(first);
        blocked.join().unwrap();
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn abandoning_a_rear_ticket_does_not_admit_an_earlier_waiter_early() {
        // Regression: capacity 1, ticket 0 holds the permit, ticket 1 waits,
        // ticket 2 waits cancellable.  Cancelling ticket 2 must NOT admit
        // ticket 1 while ticket 0 still holds — the abandoned slot is only
        // vacated when its turn comes.
        let gate = Arc::new(FairGate::new(1));
        let first = gate.acquire();
        let admitted = Arc::new(AtomicUsize::new(0));
        let middle = {
            let (gate, admitted) = (Arc::clone(&gate), Arc::clone(&admitted));
            std::thread::spawn(move || {
                let _permit = gate.acquire();
                admitted.fetch_add(1, Ordering::SeqCst);
            })
        };
        while gate.in_flight() < 2 {
            std::thread::yield_now();
        }
        let cancel = Arc::new(AtomicUsize::new(0));
        let rear = {
            let (gate, cancel) = (Arc::clone(&gate), Arc::clone(&cancel));
            std::thread::spawn(move || {
                gate.acquire_unless(|| cancel.load(Ordering::SeqCst) == 1)
                    .is_none()
            })
        };
        while gate.in_flight() < 3 {
            std::thread::yield_now();
        }
        cancel.store(1, Ordering::SeqCst);
        gate.notify_waiters();
        assert!(rear.join().unwrap(), "cancelled rear waiter got a permit");
        // Ticket 1 must still be blocked: ticket 0 never released.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(
            admitted.load(Ordering::SeqCst),
            0,
            "middle waiter admitted while the permit was still held"
        );
        drop(first);
        middle.join().unwrap();
        assert_eq!(admitted.load(Ordering::SeqCst), 1);
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn admission_is_fifo() {
        // Hold the single permit, queue several waiters with known arrival
        // order, then release and check they are admitted in that order.
        let gate = Arc::new(FairGate::new(1));
        let admitted = Arc::new(Mutex::new(Vec::new()));
        let first = gate.acquire();
        let mut handles = Vec::new();
        for i in 0..4 {
            let worker_gate = Arc::clone(&gate);
            let admitted = Arc::clone(&admitted);
            handles.push(std::thread::spawn(move || {
                let _permit = worker_gate.acquire();
                admitted.lock().unwrap().push(i);
            }));
            // Wait until this waiter has taken its ticket so arrival order is
            // deterministic.
            while gate.in_flight() < i + 2 {
                std::thread::yield_now();
            }
        }
        drop(first);
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(*admitted.lock().unwrap(), vec![0, 1, 2, 3]);
    }
}
