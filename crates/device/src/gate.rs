//! FIFO admission control for concurrent job submitters.
//!
//! A device executes kernel launches from any number of host threads, but its
//! worker pool has a fixed width: admitting more concurrent *jobs* (full
//! integration runs) than there are workers buys no extra parallelism and only
//! adds queue contention.  [`FairGate`] is a ticket-ordered counting semaphore
//! that bounds the number of in-flight jobs at the device's worker count while
//! guaranteeing **fairness**: submitters are admitted strictly in arrival
//! order, so a steady stream of short jobs can never starve a long one that
//! arrived first.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Debug)]
struct GateState {
    /// Next ticket to hand out; tickets are admitted in issue order.
    next_ticket: u64,
    /// Number of permits released so far.  Ticket `t` may proceed once
    /// `t < released + capacity`.
    released: u64,
}

/// A first-in-first-out counting semaphore bounding concurrent submitters.
#[derive(Debug)]
pub struct FairGate {
    capacity: u64,
    state: Mutex<GateState>,
    turn: Condvar,
}

impl FairGate {
    /// Create a gate admitting at most `capacity` holders at once (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1) as u64,
            state: Mutex::new(GateState {
                next_ticket: 0,
                released: 0,
            }),
            turn: Condvar::new(),
        }
    }

    /// Maximum number of concurrent permit holders.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Number of submitters currently holding or waiting for a permit.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        let state = lock(&self.state);
        (state.next_ticket - state.released) as usize
    }

    /// Block until admitted, in strict arrival order, and return the permit.
    /// Dropping the permit releases the slot and wakes the next ticket.
    pub fn acquire(&self) -> GatePermit<'_> {
        let mut state = lock(&self.state);
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        while ticket >= state.released + self.capacity {
            state = self
                .turn
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(state);
        GatePermit { gate: self }
    }
}

/// RAII permit for one admitted submitter; dropping it admits the next ticket.
#[derive(Debug)]
pub struct GatePermit<'a> {
    gate: &'a FairGate,
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        let mut state = lock(&self.gate.state);
        state.released += 1;
        drop(state);
        // Every waiter re-checks its own ticket; admission order is enforced
        // by the ticket comparison, not by wake order.
        self.gate.turn.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Barrier};
    use std::time::Duration;

    #[test]
    fn permits_up_to_capacity_without_blocking() {
        let gate = FairGate::new(3);
        let a = gate.acquire();
        let b = gate.acquire();
        let c = gate.acquire();
        assert_eq!(gate.in_flight(), 3);
        drop((a, b, c));
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let gate = FairGate::new(0);
        assert_eq!(gate.capacity(), 1);
        let permit = gate.acquire();
        drop(permit);
    }

    #[test]
    fn observed_concurrency_never_exceeds_capacity() {
        let gate = Arc::new(FairGate::new(2));
        let active = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (gate, active, peak, barrier) = (
                    Arc::clone(&gate),
                    Arc::clone(&active),
                    Arc::clone(&peak),
                    Arc::clone(&barrier),
                );
                std::thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..5 {
                        let _permit = gate.acquire();
                        let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_micros(200));
                        active.fetch_sub(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "peak {}",
            peak.load(Ordering::SeqCst)
        );
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn admission_is_fifo() {
        // Hold the single permit, queue several waiters with known arrival
        // order, then release and check they are admitted in that order.
        let gate = Arc::new(FairGate::new(1));
        let admitted = Arc::new(Mutex::new(Vec::new()));
        let first = gate.acquire();
        let mut handles = Vec::new();
        for i in 0..4 {
            let worker_gate = Arc::clone(&gate);
            let admitted = Arc::clone(&admitted);
            handles.push(std::thread::spawn(move || {
                let _permit = worker_gate.acquire();
                admitted.lock().unwrap().push(i);
            }));
            // Wait until this waiter has taken its ticket so arrival order is
            // deterministic.
            while gate.in_flight() < i + 2 {
                std::thread::yield_now();
            }
        }
        drop(first);
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(*admitted.lock().unwrap(), vec![0, 1, 2, 3]);
    }
}
