//! Per-kernel timing, the stand-in for CUDA events / `nvprof`.
//!
//! PAGANI's §4.3.2 breaks execution time into four kernel categories (evaluate,
//! post-processing, threshold classification, filter + split).  Every launch through
//! [`crate::Device`] records its wall time here under the kernel name supplied by the
//! caller, and the bench harness aggregates the records into the same breakdown.

use std::collections::BTreeMap;
use std::time::Duration;

use parking_lot::Mutex;

/// Aggregated timing for a single kernel name.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelTiming {
    /// Number of launches recorded.
    pub launches: usize,
    /// Total wall time across all launches.
    pub total: Duration,
    /// Total number of blocks executed across all launches.
    pub blocks: usize,
    /// Total number of resident-block waves across all launches.  A launch
    /// whose grid fits within `max_resident_blocks` contributes one wave;
    /// larger grids are serialised and contribute `ceil(grid / cap)` waves.
    pub waves: usize,
}

impl KernelTiming {
    /// Mean wall time per launch; zero if nothing was recorded.
    #[must_use]
    pub fn mean(&self) -> Duration {
        if self.launches == 0 {
            Duration::ZERO
        } else {
            self.total / self.launches as u32
        }
    }
}

/// Thread-safe accumulator of per-kernel timings.
#[derive(Debug, Default)]
pub struct DeviceProfile {
    records: Mutex<BTreeMap<String, KernelTiming>>,
}

impl DeviceProfile {
    /// Create an empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one launch of `kernel` that ran `blocks` blocks in a single
    /// wave in `elapsed`.  Equivalent to [`DeviceProfile::record_launch`] with
    /// one wave.
    pub fn record(&self, kernel: &str, blocks: usize, elapsed: Duration) {
        self.record_launch(kernel, blocks, 1, elapsed);
    }

    /// Record one launch of `kernel` that ran `blocks` blocks serialised into
    /// `waves` resident-block waves in `elapsed`.
    pub fn record_launch(&self, kernel: &str, blocks: usize, waves: usize, elapsed: Duration) {
        let mut records = self.records.lock();
        let entry = records.entry(kernel.to_owned()).or_default();
        entry.launches += 1;
        entry.total += elapsed;
        entry.blocks += blocks;
        entry.waves += waves;
    }

    /// Timing for one kernel, if any launches were recorded.
    #[must_use]
    pub fn kernel(&self, kernel: &str) -> Option<KernelTiming> {
        self.records.lock().get(kernel).copied()
    }

    /// Snapshot of all recorded kernels, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, KernelTiming)> {
        self.records
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Total wall time across all kernels.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.records.lock().values().map(|t| t.total).sum()
    }

    /// Fraction of total kernel time spent in kernels whose name starts with `prefix`.
    ///
    /// Returns zero if no time has been recorded at all.
    #[must_use]
    pub fn fraction_for_prefix(&self, prefix: &str) -> f64 {
        let records = self.records.lock();
        let total: Duration = records.values().map(|t| t.total).sum();
        if total.is_zero() {
            return 0.0;
        }
        let matching: Duration = records
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, t)| t.total)
            .sum();
        matching.as_secs_f64() / total.as_secs_f64()
    }

    /// Remove all recorded timings.
    pub fn reset(&self) {
        self.records.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let profile = DeviceProfile::new();
        profile.record("evaluate", 10, Duration::from_millis(4));
        profile.record("evaluate", 20, Duration::from_millis(6));
        let t = profile.kernel("evaluate").unwrap();
        assert_eq!(t.launches, 2);
        assert_eq!(t.blocks, 30);
        assert_eq!(t.total, Duration::from_millis(10));
        assert_eq!(t.mean(), Duration::from_millis(5));
    }

    #[test]
    fn waves_accumulate_across_launches() {
        let profile = DeviceProfile::new();
        profile.record_launch("evaluate", 4096, 4, Duration::from_millis(2));
        profile.record("evaluate", 100, Duration::from_millis(1));
        let t = profile.kernel("evaluate").unwrap();
        assert_eq!(t.launches, 2);
        assert_eq!(t.blocks, 4196);
        assert_eq!(t.waves, 5);
    }

    #[test]
    fn unknown_kernel_is_none() {
        let profile = DeviceProfile::new();
        assert!(profile.kernel("nope").is_none());
    }

    #[test]
    fn fraction_for_prefix_partitions_time() {
        let profile = DeviceProfile::new();
        profile.record("evaluate", 1, Duration::from_millis(90));
        profile.record("filter.compact", 1, Duration::from_millis(5));
        profile.record("filter.split", 1, Duration::from_millis(5));
        assert!((profile.fraction_for_prefix("evaluate") - 0.9).abs() < 1e-9);
        assert!((profile.fraction_for_prefix("filter") - 0.1).abs() < 1e-9);
        assert_eq!(profile.fraction_for_prefix("missing"), 0.0);
    }

    #[test]
    fn empty_profile_fraction_is_zero() {
        let profile = DeviceProfile::new();
        assert_eq!(profile.fraction_for_prefix("evaluate"), 0.0);
        assert_eq!(profile.total_time(), Duration::ZERO);
    }

    #[test]
    fn reset_clears_records() {
        let profile = DeviceProfile::new();
        profile.record("evaluate", 1, Duration::from_millis(1));
        profile.reset();
        assert!(profile.snapshot().is_empty());
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let profile = DeviceProfile::new();
        profile.record("z", 1, Duration::from_millis(1));
        profile.record("a", 1, Duration::from_millis(1));
        let names: Vec<String> = profile.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a".to_string(), "z".to_string()]);
    }

    #[test]
    fn mean_of_empty_timing_is_zero() {
        assert_eq!(KernelTiming::default().mean(), Duration::ZERO);
    }
}
