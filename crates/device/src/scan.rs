//! Prefix scans and stream compaction.
//!
//! PAGANI's filtering step removes the finished regions from the region lists.  On the
//! GPU this is done with a prefix scan over the activity mask followed by a scatter of
//! the surviving entries (the Thrust `exclusive_scan` + copy pattern).  The same
//! primitives are provided here: [`exclusive_scan`] over `usize` counters and
//! [`compact_by_mask`] / [`compaction_indices`] for the scatter.

use rayon::prelude::*;

/// Chunk length for the two-pass parallel scan.
const CHUNK: usize = 8192;

/// Exclusive prefix sum of `values`: `out[i] = Σ_{j<i} values[j]`.
///
/// Returns the scanned vector and the total sum.
#[must_use]
pub fn exclusive_scan(values: &[usize]) -> (Vec<usize>, usize) {
    if values.is_empty() {
        return (Vec::new(), 0);
    }
    if values.len() <= CHUNK {
        let mut out = Vec::with_capacity(values.len());
        let mut running = 0usize;
        for &v in values {
            out.push(running);
            running += v;
        }
        return (out, running);
    }
    // Pass 1: per-chunk sums.
    let chunk_sums: Vec<usize> = values
        .par_chunks(CHUNK)
        .map(|chunk| chunk.iter().sum())
        .collect();
    // Sequential scan of the (small) chunk-sum array.
    let mut chunk_offsets = Vec::with_capacity(chunk_sums.len());
    let mut running = 0usize;
    for &s in &chunk_sums {
        chunk_offsets.push(running);
        running += s;
    }
    // Pass 2: local scans offset by the chunk base.
    let mut out = vec![0usize; values.len()];
    out.par_chunks_mut(CHUNK)
        .zip(values.par_chunks(CHUNK))
        .zip(chunk_offsets.par_iter())
        .for_each(|((out_chunk, in_chunk), &base)| {
            let mut local = base;
            for (o, &v) in out_chunk.iter_mut().zip(in_chunk) {
                *o = local;
                local += v;
            }
        });
    (out, running)
}

/// Destination index for every surviving (mask ≠ 0) element, plus the survivor count.
///
/// `indices[i]` is meaningful only where `mask[i] != 0`.
#[must_use]
pub fn compaction_indices(mask: &[u8]) -> (Vec<usize>, usize) {
    let counters: Vec<usize> = mask.iter().map(|&m| usize::from(m != 0)).collect();
    exclusive_scan(&counters)
}

/// Keep only the elements of `values` whose `mask` entry is non-zero, preserving order.
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn compact_by_mask<T: Clone + Send + Sync>(values: &[T], mask: &[u8]) -> Vec<T> {
    assert_eq!(
        values.len(),
        mask.len(),
        "compaction requires equal lengths"
    );
    // Scan for destination offsets, then gather in parallel: every destination is
    // produced by exactly one source, so the gather is embarrassingly parallel.
    let sources = surviving_indices(mask);
    gather(values, &sources)
}

/// Like [`compact_by_mask`], but writing into `out`, reusing its capacity.
///
/// This is the allocation-free variant used by the scratch-arena execution
/// path: `out` is cleared and refilled, so repeated iterations recycle one
/// vector instead of allocating a fresh one per generation.  The gather is
/// sequential — the surviving count per generation is small compared to the
/// evaluate kernel — and produces exactly the same element order as the
/// parallel variant.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn compact_by_mask_into<T: Clone>(values: &[T], mask: &[u8], out: &mut Vec<T>) {
    assert_eq!(
        values.len(),
        mask.len(),
        "compaction requires equal lengths"
    );
    out.clear();
    out.extend(
        values
            .iter()
            .zip(mask)
            .filter(|(_, &m)| m != 0)
            .map(|(v, _)| v.clone()),
    );
}

/// Gather `values[src]` for every index in `sources`.
///
/// Used when the surviving-region indices have already been computed once and several
/// parallel arrays must be compacted consistently.
#[must_use]
pub fn gather<T: Clone + Send + Sync>(values: &[T], sources: &[usize]) -> Vec<T> {
    sources.par_iter().map(|&src| values[src].clone()).collect()
}

/// Indices of the non-zero entries of `mask`, in order.
#[must_use]
pub fn surviving_indices(mask: &[u8]) -> Vec<usize> {
    mask.iter()
        .enumerate()
        .filter(|(_, &m)| m != 0)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exclusive_scan_small() {
        let (scan, total) = exclusive_scan(&[1, 2, 3, 4]);
        assert_eq!(scan, vec![0, 1, 3, 6]);
        assert_eq!(total, 10);
    }

    #[test]
    fn exclusive_scan_empty() {
        let (scan, total) = exclusive_scan(&[]);
        assert!(scan.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn exclusive_scan_large_matches_sequential() {
        let values: Vec<usize> = (0..100_000).map(|i| i % 7).collect();
        let (scan, total) = exclusive_scan(&values);
        let mut running = 0;
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(scan[i], running, "mismatch at {i}");
            running += v;
        }
        assert_eq!(total, running);
    }

    #[test]
    fn compact_preserves_order() {
        let values = vec![10, 11, 12, 13, 14];
        let mask = vec![1u8, 0, 1, 0, 1];
        assert_eq!(compact_by_mask(&values, &mask), vec![10, 12, 14]);
    }

    #[test]
    fn compact_into_matches_allocating_variant_and_reuses_storage() {
        let values: Vec<i32> = (0..1000).collect();
        let mask: Vec<u8> = (0..1000).map(|i| (i % 3 == 0) as u8).collect();
        let mut out = Vec::with_capacity(1000);
        out.push(-1); // stale content must be cleared
        let cap = out.capacity();
        compact_by_mask_into(&values, &mask, &mut out);
        assert_eq!(out, compact_by_mask(&values, &mask));
        assert_eq!(out.capacity(), cap, "no reallocation needed");
    }

    #[test]
    fn compact_all_or_nothing() {
        let values = vec![1.0, 2.0, 3.0];
        assert_eq!(compact_by_mask(&values, &[1, 1, 1]), values);
        assert!(compact_by_mask(&values, &[0, 0, 0]).is_empty());
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn compact_rejects_mismatched_lengths() {
        let _ = compact_by_mask(&[1, 2, 3], &[1u8]);
    }

    #[test]
    fn gather_picks_sources() {
        let values = vec!["a", "b", "c", "d"];
        assert_eq!(gather(&values, &[3, 0, 0]), vec!["d", "a", "a"]);
    }

    #[test]
    fn surviving_indices_match_mask() {
        assert_eq!(surviving_indices(&[0, 1, 1, 0, 1]), vec![1, 2, 4]);
    }

    proptest! {
        #[test]
        fn prop_scan_total_equals_sum(values in proptest::collection::vec(0usize..5, 0..20_000)) {
            let (_, total) = exclusive_scan(&values);
            prop_assert_eq!(total, values.iter().sum::<usize>());
        }

        #[test]
        fn prop_compaction_matches_filter(
            values in proptest::collection::vec(-1e6f64..1e6, 0..5000),
            seed in 0u64..u64::MAX,
        ) {
            let mask: Vec<u8> = (0..values.len()).map(|i| ((seed >> (i % 61)) & 1) as u8).collect();
            let compacted = compact_by_mask(&values, &mask);
            let expected: Vec<f64> = values
                .iter()
                .zip(&mask)
                .filter(|(_, &m)| m != 0)
                .map(|(&v, _)| v)
                .collect();
            prop_assert_eq!(compacted, expected);
        }

        #[test]
        fn prop_gather_of_surviving_indices_equals_compaction(
            values in proptest::collection::vec(0i64..1000, 0..3000),
            seed in 0u64..u64::MAX,
        ) {
            let mask: Vec<u8> = (0..values.len()).map(|i| ((seed >> (i % 53)) & 1) as u8).collect();
            let via_gather = gather(&values, &surviving_indices(&mask));
            let via_compact = compact_by_mask(&values, &mask);
            prop_assert_eq!(via_gather, via_compact);
        }
    }
}
