//! Kernel-launch model.
//!
//! A launch maps a one-dimensional *grid* of blocks onto the device's thread pool.
//! Each block executes independently — exactly the contract CUDA gives a
//! `kernel<<<grid, block>>>` launch — and the host (the caller) blocks until the whole
//! grid has finished, which is how PAGANI uses the GPU (bulk-synchronous iterations).
//!
//! The block size is retained for bookkeeping (the paper launches 256-thread blocks,
//! one per sub-region) and for the simulated-occupancy statistics, but the substrate
//! does not try to emulate intra-block SIMT scheduling: a block body is a closure that
//! may itself use whatever instruction-level parallelism the host CPU offers.

/// Grid/block shape for a kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of blocks in the (1-D) grid.
    pub grid_size: usize,
    /// Number of threads per block (bookkeeping only).
    pub block_size: usize,
}

impl LaunchConfig {
    /// A grid of `grid_size` blocks with the paper's default 256 threads per block.
    #[must_use]
    pub fn grid(grid_size: usize) -> Self {
        Self {
            grid_size,
            block_size: 256,
        }
    }

    /// Override the block size.
    #[must_use]
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size;
        self
    }

    /// Total number of simulated threads in the launch.
    #[must_use]
    pub fn total_threads(&self) -> usize {
        self.grid_size * self.block_size
    }
}

/// Per-block execution context handed to the kernel body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockContext {
    /// Index of this block within the grid (`blockIdx.x`).
    pub block_idx: usize,
    /// Number of blocks in the grid (`gridDim.x`).
    pub grid_size: usize,
    /// Threads per block (`blockDim.x`).
    pub block_size: usize,
}

impl BlockContext {
    /// Iterator over the global thread indices covered by this block, mirroring the
    /// common `blockIdx.x * blockDim.x + threadIdx.x` indexing pattern.
    pub fn thread_ids(&self) -> impl Iterator<Item = usize> + '_ {
        let base = self.block_idx * self.block_size;
        (0..self.block_size).map(move |t| base + t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_defaults_to_256_threads() {
        let cfg = LaunchConfig::grid(32);
        assert_eq!(cfg.block_size, 256);
        assert_eq!(cfg.total_threads(), 32 * 256);
    }

    #[test]
    fn block_size_override() {
        let cfg = LaunchConfig::grid(4).with_block_size(64);
        assert_eq!(cfg.total_threads(), 256);
    }

    #[test]
    fn thread_ids_cover_contiguous_range() {
        let ctx = BlockContext {
            block_idx: 3,
            grid_size: 8,
            block_size: 4,
        };
        let ids: Vec<usize> = ctx.thread_ids().collect();
        assert_eq!(ids, vec![12, 13, 14, 15]);
    }
}
