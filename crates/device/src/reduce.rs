//! Thrust-style parallel reductions.
//!
//! PAGANI's post-processing reduces the per-region integral and error estimates to the
//! global estimates (Algorithm 2, lines 13–14 and 18–19) and finds the min/max error
//! estimate for the threshold search (Algorithm 3, line 5).  These helpers provide
//! those reductions with deterministic results: the input is reduced in fixed-size
//! chunks whose partial sums are combined in chunk order, so the floating-point
//! rounding is independent of the number of worker threads.

use rayon::prelude::*;

/// Chunk length used for the deterministic two-level reductions.
const CHUNK: usize = 4096;

/// Sum of a slice, computed in parallel with deterministic rounding.
#[must_use]
pub fn sum(values: &[f64]) -> f64 {
    if values.len() <= CHUNK {
        return values.iter().sum();
    }
    values
        .par_chunks(CHUNK)
        .map(|chunk| chunk.iter().sum::<f64>())
        .collect::<Vec<f64>>()
        .iter()
        .sum()
}

/// Dot product `Σ a[i]·b[i]`, computed in parallel with deterministic rounding.
///
/// PAGANI uses this with a 0/1 activity mask to accumulate the estimates of the active
/// regions (Algorithm 2, lines 18–19).
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal-length inputs");
    if a.len() <= CHUNK {
        return a.iter().zip(b).map(|(x, y)| x * y).sum();
    }
    a.par_chunks(CHUNK)
        .zip(b.par_chunks(CHUNK))
        .map(|(ca, cb)| ca.iter().zip(cb).map(|(x, y)| x * y).sum::<f64>())
        .collect::<Vec<f64>>()
        .iter()
        .sum()
}

/// Masked sum `Σ values[i]` over indices where `mask[i] != 0`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn masked_sum(values: &[f64], mask: &[u8]) -> f64 {
    assert_eq!(
        values.len(),
        mask.len(),
        "masked sum requires equal lengths"
    );
    if values.len() <= CHUNK {
        return values
            .iter()
            .zip(mask)
            .filter(|(_, &m)| m != 0)
            .map(|(v, _)| v)
            .sum();
    }
    values
        .par_chunks(CHUNK)
        .zip(mask.par_chunks(CHUNK))
        .map(|(cv, cm)| {
            cv.iter()
                .zip(cm)
                .filter(|(_, &m)| m != 0)
                .map(|(v, _)| v)
                .sum::<f64>()
        })
        .collect::<Vec<f64>>()
        .iter()
        .sum()
}

/// Number of non-zero entries in a 0/1 mask.
#[must_use]
pub fn count_nonzero(mask: &[u8]) -> usize {
    if mask.len() <= CHUNK {
        return mask.iter().filter(|&&m| m != 0).count();
    }
    mask.par_chunks(CHUNK)
        .map(|chunk| chunk.iter().filter(|&&m| m != 0).count())
        .sum()
}

/// Minimum and maximum of a slice, ignoring NaNs.
///
/// Returns `None` for an empty slice or a slice of NaNs.
#[must_use]
pub fn min_max(values: &[f64]) -> Option<(f64, f64)> {
    let combine = |acc: Option<(f64, f64)>, value: f64| -> Option<(f64, f64)> {
        if value.is_nan() {
            return acc;
        }
        Some(match acc {
            None => (value, value),
            Some((lo, hi)) => (lo.min(value), hi.max(value)),
        })
    };
    let merge = |a: Option<(f64, f64)>, b: Option<(f64, f64)>| match (a, b) {
        (None, x) | (x, None) => x,
        (Some((alo, ahi)), Some((blo, bhi))) => Some((alo.min(blo), ahi.max(bhi))),
    };
    if values.len() <= CHUNK {
        return values.iter().copied().fold(None, combine);
    }
    values
        .par_chunks(CHUNK)
        .map(|chunk| chunk.iter().copied().fold(None, combine))
        .reduce(|| None, merge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sum_of_small_slice() {
        assert_eq!(sum(&[1.0, 2.0, 3.5]), 6.5);
        assert_eq!(sum(&[]), 0.0);
    }

    #[test]
    fn sum_of_large_slice_matches_sequential() {
        let values: Vec<f64> = (0..100_000).map(|i| (i % 97) as f64 * 0.25).collect();
        let sequential: f64 = values.iter().sum();
        let parallel = sum(&values);
        assert!((sequential - parallel).abs() < 1e-6 * sequential.abs());
    }

    #[test]
    fn sum_is_deterministic_across_calls() {
        let values: Vec<f64> = (0..50_000)
            .map(|i| ((i * 2654435761_usize) % 1000) as f64 / 7.0)
            .collect();
        let a = sum(&values);
        let b = sum(&values);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn dot_matches_manual() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn dot_rejects_mismatched_lengths() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn masked_sum_ignores_inactive() {
        let values = [10.0, 20.0, 30.0, 40.0];
        let mask = [1u8, 0, 1, 0];
        assert_eq!(masked_sum(&values, &mask), 40.0);
    }

    #[test]
    fn count_nonzero_counts() {
        assert_eq!(count_nonzero(&[0, 1, 2, 0, 255]), 3);
        assert_eq!(count_nonzero(&[]), 0);
    }

    #[test]
    fn min_max_basic() {
        assert_eq!(min_max(&[3.0, -1.0, 7.0]), Some((-1.0, 7.0)));
        assert_eq!(min_max(&[]), None);
        assert_eq!(min_max(&[f64::NAN]), None);
        assert_eq!(min_max(&[f64::NAN, 2.0]), Some((2.0, 2.0)));
    }

    #[test]
    fn min_max_large_slice() {
        let values: Vec<f64> = (0..30_000).map(|i| ((i as f64) - 15_000.0) * 0.5).collect();
        let (lo, hi) = min_max(&values).unwrap();
        assert_eq!(lo, -7500.0);
        assert_eq!(hi, (29_999.0 - 15_000.0) * 0.5);
    }

    proptest! {
        #[test]
        fn prop_sum_matches_sequential(values in proptest::collection::vec(-1e6f64..1e6, 0..9000)) {
            let sequential: f64 = values.iter().sum();
            let parallel = sum(&values);
            let tolerance = 1e-9 * values.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
            prop_assert!((sequential - parallel).abs() <= tolerance);
        }

        #[test]
        fn prop_dot_equals_masked_sum_for_01_mask(
            values in proptest::collection::vec(-1e3f64..1e3, 1..2000),
            seed in 0u64..u64::MAX,
        ) {
            // Build a deterministic 0/1 mask from the seed.
            let mask_u8: Vec<u8> = (0..values.len())
                .map(|i| ((seed >> (i % 64)) & 1) as u8)
                .collect();
            let mask_f64: Vec<f64> = mask_u8.iter().map(|&m| f64::from(m)).collect();
            let via_dot = dot(&values, &mask_f64);
            let via_mask = masked_sum(&values, &mask_u8);
            prop_assert!((via_dot - via_mask).abs() <= 1e-9 * via_dot.abs().max(1.0));
        }

        #[test]
        fn prop_min_max_bounds_every_element(values in proptest::collection::vec(-1e9f64..1e9, 1..3000)) {
            let (lo, hi) = min_max(&values).unwrap();
            for &v in &values {
                prop_assert!(v >= lo && v <= hi);
            }
        }
    }
}
