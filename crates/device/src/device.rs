//! The simulated device: configuration, kernel launches and access to memory,
//! primitives and profiling.
//!
//! Since the backend redesign, [`Device`] is a thin handle: an
//! `Arc<dyn ComputeBackend>` plus one [`MemoryPool`] accounting view.  All
//! execution — wave-serialised launches, reductions, profiled host sections —
//! goes through the trait, so swapping the substrate (see
//! [`crate::backend`]) leaves every caller of this type untouched.

use std::sync::Arc;

use crate::backend::{ComputeBackend, CpuBackend};
use crate::error::DeviceResult;
use crate::launch::{BlockContext, LaunchConfig};
use crate::memory::MemoryPool;
use crate::profile::DeviceProfile;
use crate::FairGate;

/// Static description of the simulated accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Device memory capacity in bytes (the paper's V100 has 16 GiB).
    pub memory_capacity: usize,
    /// Maximum number of blocks resident at once.  Launches with larger grids are
    /// serialised into waves of at most this many blocks (the paper's phase-I cap is
    /// 2^15 concurrent blocks); the wave count is recorded in the profile.
    pub max_resident_blocks: usize,
    /// Default threads per block.
    pub default_block_size: usize,
    /// Number of worker threads to use.  `Some(n)` gives the device a dedicated
    /// persistent pool of `n` workers that caps every parallel call made during a
    /// launch — including calls nested inside kernel bodies, which inherit the
    /// pool through their worker thread.  `None` uses the shared global pool
    /// (all cores).
    pub worker_threads: Option<usize>,
    /// Human-readable device name, reported in benchmark output.
    pub name: String,
}

impl DeviceConfig {
    /// The configuration used throughout the paper: a 16 GiB V100 with 256-thread
    /// blocks and a 2^15 resident-block cap.
    #[must_use]
    pub fn v100_like() -> Self {
        Self {
            memory_capacity: 16 * (1 << 30),
            max_resident_blocks: 1 << 15,
            default_block_size: 256,
            worker_threads: None,
            name: "simulated-v100".to_owned(),
        }
    }

    /// A small configuration for tests: a few MiB of memory so exhaustion paths are
    /// easy to trigger, and a small resident-block cap.
    #[must_use]
    pub fn test_small() -> Self {
        Self {
            memory_capacity: 8 * (1 << 20),
            max_resident_blocks: 1 << 10,
            default_block_size: 64,
            worker_threads: None,
            name: "simulated-test".to_owned(),
        }
    }

    /// Override the memory capacity (bytes).
    #[must_use]
    pub fn with_memory_capacity(mut self, bytes: usize) -> Self {
        self.memory_capacity = bytes;
        self
    }

    /// Override the worker-thread count.
    #[must_use]
    pub fn with_worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = Some(threads);
        self
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::v100_like()
    }
}

struct DeviceInner {
    config: DeviceConfig,
    /// The execution substrate.  Shared with clones and memory-isolated
    /// views, so workers, the submission gate and the profile are common
    /// to every view of one device.
    backend: Arc<dyn ComputeBackend>,
    /// This view's memory-accounting pool (clones share it; isolated
    /// views get a fresh one from the backend).
    memory: MemoryPool,
}

/// Handle to the simulated accelerator.
///
/// Cloning is cheap and clones share memory accounting and profiling.
#[derive(Clone)]
pub struct Device {
    inner: Arc<DeviceInner>,
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("name", &self.inner.config.name)
            .field("memory_capacity", &self.inner.config.memory_capacity)
            .finish()
    }
}

impl Device {
    /// Create a device from a configuration, running on the reference
    /// [`CpuBackend`].
    ///
    /// # Panics
    /// Panics if a dedicated worker pool was requested but could not be built (this
    /// only happens under pathological resource exhaustion on the host).
    #[must_use]
    pub fn new(config: DeviceConfig) -> Self {
        Self::from_parts(config.clone(), Arc::new(CpuBackend::new(config)))
    }

    /// Create a device over an explicit backend; the configuration is
    /// synthesised from [`ComputeBackend::caps`].
    ///
    /// This is how alternative substrates — or instrumentation wrappers
    /// like [`crate::CountingBackend`] — slot in underneath the whole
    /// integration stack.
    #[must_use]
    pub fn with_backend(backend: Arc<dyn ComputeBackend>) -> Self {
        let caps = backend.caps();
        let config = DeviceConfig {
            memory_capacity: caps.memory_capacity,
            max_resident_blocks: caps.max_resident_blocks,
            default_block_size: caps.default_block_size,
            worker_threads: Some(caps.workers),
            name: caps.name,
        };
        Self::from_parts(config, backend)
    }

    fn from_parts(config: DeviceConfig, backend: Arc<dyn ComputeBackend>) -> Self {
        let memory = backend.alloc_memory_view();
        Self {
            inner: Arc::new(DeviceInner {
                config,
                backend,
                memory,
            }),
        }
    }

    /// Device with the paper's V100-like configuration.
    #[must_use]
    pub fn v100_like() -> Self {
        Self::new(DeviceConfig::v100_like())
    }

    /// Small device for tests.
    #[must_use]
    pub fn test_small() -> Self {
        Self::new(DeviceConfig::test_small())
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &DeviceConfig {
        &self.inner.config
    }

    /// The backend this device executes on.
    #[must_use]
    pub fn backend(&self) -> &Arc<dyn ComputeBackend> {
        &self.inner.backend
    }

    /// The device memory pool.
    #[must_use]
    pub fn memory(&self) -> &MemoryPool {
        &self.inner.memory
    }

    /// The accumulated kernel profile.
    #[must_use]
    pub fn profile(&self) -> &DeviceProfile {
        self.inner.backend.profile()
    }

    /// Number of worker threads a kernel launch on this device can occupy: the
    /// dedicated pool's cap, or the host's available parallelism (sampled once
    /// at construction) when the device shares the global pool.  Always equal
    /// to the submission gate's capacity.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        self.inner.backend.gate().capacity()
    }

    /// The device's FIFO admission gate for concurrent job submitters.
    ///
    /// Sized to [`Device::effective_workers`] and shared by every clone and
    /// every [`Device::isolated_memory_view`], so however many host threads
    /// submit whole jobs to this device, at most a worker-pool's worth are in
    /// flight at once and they are admitted in arrival order.
    #[must_use]
    pub fn submission_gate(&self) -> &FairGate {
        self.inner.backend.gate()
    }

    /// A handle to this device that shares its backend — workers, submission
    /// gate, profile and configuration — but draws from a **fresh,
    /// full-capacity memory pool**.
    ///
    /// This is the per-job memory model of the batch execution engine: each
    /// concurrent job sees the same empty, full-capacity pool it would see if
    /// it were the only job on the device, so memory-pressure heuristics — and
    /// therefore results — are bit-identical to running the job alone.  The
    /// engine assumes each job individually fits the device; enforcing a
    /// *combined* cross-job quota is an explicit non-goal here (tracked on the
    /// roadmap).
    #[must_use]
    pub fn isolated_memory_view(&self) -> Device {
        Device {
            inner: Arc::new(DeviceInner {
                config: self.inner.config.clone(),
                backend: Arc::clone(&self.inner.backend),
                memory: self.inner.backend.alloc_memory_view(),
            }),
        }
    }

    fn default_config(&self, grid_size: usize) -> LaunchConfig {
        LaunchConfig {
            grid_size,
            block_size: self.inner.config.default_block_size,
        }
    }

    /// Launch a pure side-effect kernel: run `body` once per block of a
    /// `grid_size`-block grid of the default block size, in parallel, and
    /// block until the whole grid has completed.  Grids larger than the
    /// device's `max_resident_blocks` execute as consecutive waves of at
    /// most that many blocks.  Wall time is recorded in the profile under
    /// `kernel`.
    ///
    /// # Errors
    /// Returns [`crate::DeviceError::EmptyLaunch`] for an empty grid.
    pub fn launch<F>(&self, kernel: &'static str, grid_size: usize, body: F) -> DeviceResult<()>
    where
        F: Fn(BlockContext) + Sync,
    {
        self.inner.backend.launch_batch(
            kernel,
            self.default_config(grid_size),
            0,
            &mut [],
            &|ctx, _| body(ctx),
        )
    }

    /// Launch a batched structure-of-arrays kernel: every block `i` of a
    /// `grid_size`-block grid writes its `lanes` output values into
    /// `out[i*lanes .. (i+1)*lanes]`.  This is the shape of PAGANI's
    /// `evaluate` kernel — one launch covers a whole generation of regions,
    /// with the per-region estimates landing in flat, reusable buffers.
    ///
    /// Blocks never share output cells, so the convention is race-free by
    /// construction; combine across blocks on the host with
    /// [`Device::reduce_sum`] and friends.
    ///
    /// # Errors
    /// Returns [`crate::DeviceError::EmptyLaunch`] for an empty grid and
    /// [`crate::DeviceError::InvalidLaunchConfig`] when
    /// `out.len() != grid_size * lanes`.
    pub fn launch_batch<F>(
        &self,
        kernel: &'static str,
        grid_size: usize,
        lanes: usize,
        out: &mut [f64],
        body: F,
    ) -> DeviceResult<()>
    where
        F: Fn(BlockContext, &mut [f64]) + Sync,
    {
        self.inner
            .backend
            .launch_batch(kernel, self.default_config(grid_size), lanes, out, &body)
    }

    /// Deterministic sum reduction on the device's backend.
    #[must_use]
    pub fn reduce_sum(&self, values: &[f64]) -> f64 {
        self.inner.backend.reduce_sum(values)
    }

    /// Deterministic masked sum reduction on the device's backend.
    #[must_use]
    pub fn reduce_masked_sum(&self, values: &[f64], mask: &[u8]) -> f64 {
        self.inner.backend.reduce_masked_sum(values, mask)
    }

    /// Deterministic `(min, max)` reduction on the device's backend.
    #[must_use]
    pub fn reduce_min_max(&self, values: &[f64]) -> Option<(f64, f64)> {
        self.inner.backend.reduce_min_max(values)
    }

    /// Exclusive prefix scan on the device's backend.
    #[must_use]
    pub fn scan_exclusive(&self, values: &[usize]) -> (Vec<usize>, usize) {
        self.inner.backend.scan_exclusive(values)
    }

    /// Run a host-side parallel section inside the device's worker pool and record it
    /// in the profile.  Used for the Thrust-style primitives so that their time shows
    /// up in the §4.3.2 breakdown.
    pub fn timed_section<R: Send>(&self, kernel: &str, op: impl FnOnce() -> R + Send) -> R {
        let mut op = Some(op);
        let mut slot: Option<R> = None;
        self.inner.backend.timed(kernel, &mut || {
            slot = Some((op.take().expect("timed section body runs once"))());
        });
        slot.expect("backend ran the timed section body")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::CountingBackend;
    use crate::DeviceError;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn launch_runs_every_block_exactly_once() {
        let device = Device::test_small();
        let counter = AtomicUsize::new(0);
        device
            .launch("count", 1000, |_| {
                counter.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn launch_batch_preserves_block_order() {
        let device = Device::test_small();
        let mut out = vec![0.0; 64];
        device
            .launch_batch("square", 64, 1, &mut out, |ctx, slot| {
                slot[0] = (ctx.block_idx * ctx.block_idx) as f64;
            })
            .unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as f64);
        }
    }

    #[test]
    fn empty_launch_is_an_error() {
        let device = Device::test_small();
        let err = device.launch("noop", 0, |_| {}).unwrap_err();
        assert_eq!(err, DeviceError::EmptyLaunch { kernel: "noop" });
        let err = device
            .launch_batch("noop", 0, 1, &mut [], |_, _| {})
            .unwrap_err();
        assert_eq!(err, DeviceError::EmptyLaunch { kernel: "noop" });
    }

    #[test]
    fn zero_block_size_is_rejected() {
        let device = Device::test_small();
        let cfg = LaunchConfig::grid(4).with_block_size(0);
        let err = device
            .backend()
            .launch_batch("bad", cfg, 0, &mut [], &|_, _| {})
            .unwrap_err();
        assert!(matches!(err, DeviceError::InvalidLaunchConfig { .. }));
    }

    #[test]
    fn launches_are_profiled() {
        let device = Device::test_small();
        device.launch("profiled", 16, |_| {}).unwrap();
        device.launch("profiled", 16, |_| {}).unwrap();
        let timing = device.profile().kernel("profiled").unwrap();
        assert_eq!(timing.launches, 2);
        assert_eq!(timing.blocks, 32);
    }

    #[test]
    fn dedicated_pool_limits_observed_parallelism() {
        let device = Device::new(DeviceConfig::test_small().with_worker_threads(1));
        // With one worker the blocks run sequentially; verify a data pattern that
        // would be racy under true concurrency is still correct (single writer).
        let mut order = vec![0usize; 32];
        let order_ptr = std::sync::Mutex::new(&mut order);
        device
            .launch("sequential", 32, |ctx| {
                let mut guard = order_ptr.lock().unwrap();
                guard[ctx.block_idx] = ctx.block_idx + 1;
            })
            .unwrap();
        assert!(order.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn oversized_grids_are_serialised_into_waves() {
        let device = Device::test_small(); // max_resident_blocks = 1024
        device.launch("waved", 4096, |_| {}).unwrap();
        let t = device.profile().kernel("waved").unwrap();
        assert_eq!(t.launches, 1);
        assert_eq!(t.blocks, 4096);
        assert_eq!(t.waves, 4);
    }

    #[test]
    fn wave_execution_preserves_block_order_and_coverage() {
        let device = Device::test_small();
        // 2.5 waves worth of blocks; outputs must still arrive in block order.
        let mut out = vec![0.0; 2560];
        device
            .launch_batch("waved.map", 2560, 1, &mut out, |ctx, slot| {
                slot[0] = ctx.block_idx as f64;
            })
            .unwrap();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as f64));
        let t = device.profile().kernel("waved.map").unwrap();
        assert_eq!(t.waves, 3);
    }

    #[test]
    fn resident_grids_run_in_one_wave() {
        let device = Device::test_small();
        device.launch("single", 1024, |_| {}).unwrap();
        assert_eq!(device.profile().kernel("single").unwrap().waves, 1);
    }

    #[test]
    fn v100_like_has_16_gib() {
        let device = Device::v100_like();
        assert_eq!(device.config().memory_capacity, 16 * (1 << 30));
        assert_eq!(device.config().max_resident_blocks, 1 << 15);
    }

    #[test]
    fn timed_section_records_profile() {
        let device = Device::test_small();
        let out = device.timed_section("reduce.sum", || 21 * 2);
        assert_eq!(out, 42);
        assert!(device.profile().kernel("reduce.sum").is_some());
    }

    #[test]
    fn reduction_wrappers_delegate_to_the_backend() {
        let device = Device::test_small();
        let values: Vec<f64> = (0..3000).map(|i| i as f64 * 0.5).collect();
        assert_eq!(
            device.reduce_sum(&values).to_bits(),
            crate::reduce::sum(&values).to_bits()
        );
        let mask: Vec<u8> = (0..3000).map(|i| u8::from(i % 2 == 0)).collect();
        assert_eq!(
            device.reduce_masked_sum(&values, &mask).to_bits(),
            crate::reduce::masked_sum(&values, &mask).to_bits()
        );
        assert_eq!(device.reduce_min_max(&[]), None);
        let counts = vec![1usize, 2, 3];
        assert_eq!(device.scan_exclusive(&counts), (vec![0, 1, 3], 6));
    }

    #[test]
    fn clones_share_memory_pool() {
        let device = Device::test_small();
        let clone = device.clone();
        let _buf = clone.memory().alloc_zeroed::<f64>(128).unwrap();
        assert_eq!(device.memory().usage().used, 1024);
    }

    #[test]
    fn isolated_view_has_its_own_memory_but_shares_the_profile() {
        let device = Device::test_small();
        let view = device.isolated_memory_view();
        let _buf = view.memory().alloc_zeroed::<f64>(128).unwrap();
        assert_eq!(view.memory().usage().used, 1024);
        assert_eq!(
            device.memory().usage().used,
            0,
            "view allocations are not charged to the parent pool"
        );
        assert_eq!(view.memory().capacity(), device.memory().capacity());
        // Kernels launched on the view land in the shared profile.
        view.launch("view.kernel", 8, |_| {}).unwrap();
        assert!(device.profile().kernel("view.kernel").is_some());
    }

    #[test]
    fn isolated_views_share_the_submission_gate() {
        let device = Device::new(DeviceConfig::test_small().with_worker_threads(2));
        assert_eq!(device.submission_gate().capacity(), 2);
        let view = device.isolated_memory_view();
        let _a = device.submission_gate().acquire();
        let _b = view.submission_gate().acquire();
        assert_eq!(device.submission_gate().in_flight(), 2);
        assert_eq!(view.submission_gate().in_flight(), 2);
    }

    #[test]
    fn effective_workers_reflects_the_dedicated_pool() {
        let device = Device::new(DeviceConfig::test_small().with_worker_threads(3));
        assert_eq!(device.effective_workers(), 3);
        let shared = Device::test_small();
        assert!(shared.effective_workers() >= 1);
    }

    #[test]
    fn with_backend_synthesises_the_config_from_caps() {
        let backend = Arc::new(CpuBackend::new(
            DeviceConfig::test_small().with_worker_threads(2),
        ));
        let device = Device::with_backend(backend);
        assert_eq!(device.config().name, "simulated-test");
        assert_eq!(device.config().worker_threads, Some(2));
        assert_eq!(device.effective_workers(), 2);
        assert_eq!(device.memory().capacity(), 8 * (1 << 20));
    }

    #[test]
    fn counting_backend_device_runs_all_existing_paths() {
        let counting = Arc::new(CountingBackend::new(Arc::new(CpuBackend::new(
            DeviceConfig::test_small(),
        ))));
        let device = Device::with_backend(Arc::clone(&counting) as Arc<dyn ComputeBackend>);
        let mut out = vec![0.0; 4];
        device
            .launch_batch("counted", 4, 1, &mut out, |ctx, slot| {
                slot[0] = ctx.block_idx as f64 + 1.0;
            })
            .unwrap();
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(counting.launches_for("counted"), 1);
        let view = device.isolated_memory_view();
        view.launch("counted", 2, |_| {}).unwrap();
        assert_eq!(counting.launches_for("counted"), 2);
        // Two views: the device's own plus the isolated one.
        assert_eq!(counting.memory_views(), 2);
    }
}
