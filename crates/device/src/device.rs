//! The simulated device: configuration, kernel launches and access to memory,
//! primitives and profiling.

use std::sync::Arc;
use std::time::Instant;

use rayon::prelude::*;

use crate::error::{DeviceError, DeviceResult};
use crate::gate::FairGate;
use crate::launch::{BlockContext, LaunchConfig};
use crate::memory::MemoryPool;
use crate::profile::DeviceProfile;

/// Static description of the simulated accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Device memory capacity in bytes (the paper's V100 has 16 GiB).
    pub memory_capacity: usize,
    /// Maximum number of blocks resident at once.  Launches with larger grids are
    /// serialised into waves of at most this many blocks (the paper's phase-I cap is
    /// 2^15 concurrent blocks); the wave count is recorded in the profile.
    pub max_resident_blocks: usize,
    /// Default threads per block.
    pub default_block_size: usize,
    /// Number of worker threads to use.  `Some(n)` gives the device a dedicated
    /// persistent pool of `n` workers that caps every parallel call made during a
    /// launch — including calls nested inside kernel bodies, which inherit the
    /// pool through their worker thread.  `None` uses the shared global pool
    /// (all cores).
    pub worker_threads: Option<usize>,
    /// Human-readable device name, reported in benchmark output.
    pub name: String,
}

impl DeviceConfig {
    /// The configuration used throughout the paper: a 16 GiB V100 with 256-thread
    /// blocks and a 2^15 resident-block cap.
    #[must_use]
    pub fn v100_like() -> Self {
        Self {
            memory_capacity: 16 * (1 << 30),
            max_resident_blocks: 1 << 15,
            default_block_size: 256,
            worker_threads: None,
            name: "simulated-v100".to_owned(),
        }
    }

    /// A small configuration for tests: a few MiB of memory so exhaustion paths are
    /// easy to trigger, and a small resident-block cap.
    #[must_use]
    pub fn test_small() -> Self {
        Self {
            memory_capacity: 8 * (1 << 20),
            max_resident_blocks: 1 << 10,
            default_block_size: 64,
            worker_threads: None,
            name: "simulated-test".to_owned(),
        }
    }

    /// Override the memory capacity (bytes).
    #[must_use]
    pub fn with_memory_capacity(mut self, bytes: usize) -> Self {
        self.memory_capacity = bytes;
        self
    }

    /// Override the worker-thread count.
    #[must_use]
    pub fn with_worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = Some(threads);
        self
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::v100_like()
    }
}

struct DeviceInner {
    config: DeviceConfig,
    memory: MemoryPool,
    /// Shared with memory-isolated views so the §4.3.2 breakdown aggregates
    /// every job's kernels, wherever they ran.
    profile: Arc<DeviceProfile>,
    /// Shared with memory-isolated views: all views launch onto the same
    /// workers, which is what keeps batch execution free of oversubscription.
    thread_pool: Option<Arc<rayon::ThreadPool>>,
    /// FIFO admission gate for concurrent job submitters, sized to the
    /// device's effective worker count and shared across views.
    gate: Arc<FairGate>,
}

/// Handle to the simulated accelerator.
///
/// Cloning is cheap and clones share memory accounting and profiling.
#[derive(Clone)]
pub struct Device {
    inner: Arc<DeviceInner>,
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("name", &self.inner.config.name)
            .field("memory_capacity", &self.inner.config.memory_capacity)
            .finish()
    }
}

impl Device {
    /// Create a device from a configuration.
    ///
    /// # Panics
    /// Panics if a dedicated Rayon pool was requested but could not be built (this
    /// only happens under pathological resource exhaustion on the host).
    #[must_use]
    pub fn new(config: DeviceConfig) -> Self {
        let memory = MemoryPool::new(config.memory_capacity);
        let thread_pool = config.worker_threads.map(|threads| {
            Arc::new(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("failed to build device worker pool"),
            )
        });
        let workers = config
            .worker_threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        Self {
            inner: Arc::new(DeviceInner {
                config,
                memory,
                profile: Arc::new(DeviceProfile::new()),
                thread_pool,
                gate: Arc::new(FairGate::new(workers)),
            }),
        }
    }

    /// Device with the paper's V100-like configuration.
    #[must_use]
    pub fn v100_like() -> Self {
        Self::new(DeviceConfig::v100_like())
    }

    /// Small device for tests.
    #[must_use]
    pub fn test_small() -> Self {
        Self::new(DeviceConfig::test_small())
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &DeviceConfig {
        &self.inner.config
    }

    /// The device memory pool.
    #[must_use]
    pub fn memory(&self) -> &MemoryPool {
        &self.inner.memory
    }

    /// The accumulated kernel profile.
    #[must_use]
    pub fn profile(&self) -> &DeviceProfile {
        &self.inner.profile
    }

    /// Number of worker threads a kernel launch on this device can occupy: the
    /// dedicated pool's cap, or the host's available parallelism (sampled once
    /// at construction) when the device shares the global pool.  Always equal
    /// to the submission gate's capacity.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        self.inner.gate.capacity()
    }

    /// The device's FIFO admission gate for concurrent job submitters.
    ///
    /// Sized to [`Device::effective_workers`] and shared by every clone and
    /// every [`Device::isolated_memory_view`], so however many host threads
    /// submit whole jobs to this device, at most a worker-pool's worth are in
    /// flight at once and they are admitted in arrival order.
    #[must_use]
    pub fn submission_gate(&self) -> &FairGate {
        &self.inner.gate
    }

    /// A handle to this device that shares its workers, submission gate,
    /// profile and configuration but draws from a **fresh, full-capacity
    /// memory pool**.
    ///
    /// This is the per-job memory model of the batch execution engine: each
    /// concurrent job sees the same empty, full-capacity pool it would see if
    /// it were the only job on the device, so memory-pressure heuristics — and
    /// therefore results — are bit-identical to running the job alone.  The
    /// engine assumes each job individually fits the device; enforcing a
    /// *combined* cross-job quota is an explicit non-goal here (tracked on the
    /// roadmap).
    #[must_use]
    pub fn isolated_memory_view(&self) -> Device {
        Device {
            inner: Arc::new(DeviceInner {
                config: self.inner.config.clone(),
                memory: MemoryPool::new(self.inner.config.memory_capacity),
                profile: Arc::clone(&self.inner.profile),
                thread_pool: self.inner.thread_pool.clone(),
                gate: Arc::clone(&self.inner.gate),
            }),
        }
    }

    fn run_in_pool<R: Send>(&self, op: impl FnOnce() -> R + Send) -> R {
        match &self.inner.thread_pool {
            Some(pool) => pool.install(op),
            None => op(),
        }
    }

    /// The one execution path every kernel launch goes through: validate the
    /// launch, serialise the grid into waves of at most `max_resident_blocks`
    /// blocks, run each wave in parallel inside the device's worker pool, and
    /// record wall time, block count and wave count in the profile.
    fn execute_grid<T, F>(
        &self,
        kernel: &'static str,
        config: LaunchConfig,
        body: &F,
    ) -> DeviceResult<Vec<T>>
    where
        T: Send,
        F: Fn(BlockContext) -> T + Sync,
    {
        if config.grid_size == 0 {
            return Err(DeviceError::EmptyLaunch { kernel });
        }
        if config.block_size == 0 {
            return Err(DeviceError::InvalidLaunchConfig {
                reason: format!("kernel `{kernel}` launched with zero threads per block"),
            });
        }
        let grid_size = config.grid_size;
        let block_size = config.block_size;
        let wave_cap = self.inner.config.max_resident_blocks.max(1);
        let waves = grid_size.div_ceil(wave_cap);
        let run_block = |block_idx: usize| {
            body(BlockContext {
                block_idx,
                grid_size,
                block_size,
            })
        };
        let start = Instant::now();
        let out = self.run_in_pool(|| {
            if waves == 1 {
                (0..grid_size).into_par_iter().map(run_block).collect()
            } else {
                let mut out = Vec::with_capacity(grid_size);
                for wave in 0..waves {
                    let wave_start = wave * wave_cap;
                    let wave_end = grid_size.min(wave_start + wave_cap);
                    let wave_out: Vec<T> = (wave_start..wave_end)
                        .into_par_iter()
                        .map(run_block)
                        .collect();
                    out.extend(wave_out);
                }
                out
            }
        });
        self.inner
            .profile
            .record_launch(kernel, grid_size, waves, start.elapsed());
        Ok(out)
    }

    /// Launch `grid_size` blocks of the default block size; see [`Device::launch_with`].
    ///
    /// # Errors
    /// Returns [`DeviceError::EmptyLaunch`] for an empty grid.
    pub fn launch<F>(&self, kernel: &'static str, grid_size: usize, body: F) -> DeviceResult<()>
    where
        F: Fn(BlockContext) + Sync,
    {
        let cfg = LaunchConfig {
            grid_size,
            block_size: self.inner.config.default_block_size,
        };
        self.launch_with(kernel, cfg, body)
    }

    /// Launch a kernel: run `body` once per block of `config`, in parallel, and block
    /// until the whole grid has completed.  Grids larger than the device's
    /// `max_resident_blocks` execute as consecutive waves of at most that many
    /// blocks.  Wall time is recorded in the profile under `kernel`.
    ///
    /// # Errors
    /// Returns [`DeviceError::EmptyLaunch`] for an empty grid and
    /// [`DeviceError::InvalidLaunchConfig`] for a zero block size.
    pub fn launch_with<F>(
        &self,
        kernel: &'static str,
        config: LaunchConfig,
        body: F,
    ) -> DeviceResult<()>
    where
        F: Fn(BlockContext) + Sync,
    {
        self.execute_grid::<(), _>(kernel, config, &|ctx| body(ctx))
            .map(|_| ())
    }

    /// Launch a kernel in which every block produces one output value; the outputs are
    /// returned in block order (waves preserve it).  This is the shape of PAGANI's
    /// `evaluate` kernel (one block evaluates one region and produces its estimates).
    ///
    /// # Errors
    /// Returns [`DeviceError::EmptyLaunch`] for an empty grid.
    pub fn launch_map<T, F>(
        &self,
        kernel: &'static str,
        grid_size: usize,
        body: F,
    ) -> DeviceResult<Vec<T>>
    where
        T: Send,
        F: Fn(BlockContext) -> T + Sync,
    {
        let cfg = LaunchConfig {
            grid_size,
            block_size: self.inner.config.default_block_size,
        };
        self.execute_grid(kernel, cfg, &body)
    }

    /// Run a host-side parallel section inside the device's worker pool and record it
    /// in the profile.  Used for the Thrust-style primitives so that their time shows
    /// up in the §4.3.2 breakdown.
    pub fn timed_section<R: Send>(&self, kernel: &str, op: impl FnOnce() -> R + Send) -> R {
        let start = Instant::now();
        let out = self.run_in_pool(op);
        self.inner.profile.record(kernel, 1, start.elapsed());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn launch_runs_every_block_exactly_once() {
        let device = Device::test_small();
        let counter = AtomicUsize::new(0);
        device
            .launch("count", 1000, |_| {
                counter.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn launch_map_preserves_block_order() {
        let device = Device::test_small();
        let out = device
            .launch_map("square", 64, |ctx| ctx.block_idx * ctx.block_idx)
            .unwrap();
        assert_eq!(out.len(), 64);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn empty_launch_is_an_error() {
        let device = Device::test_small();
        let err = device.launch("noop", 0, |_| {}).unwrap_err();
        assert_eq!(err, DeviceError::EmptyLaunch { kernel: "noop" });
        let err = device.launch_map::<usize, _>("noop", 0, |_| 0).unwrap_err();
        assert_eq!(err, DeviceError::EmptyLaunch { kernel: "noop" });
    }

    #[test]
    fn zero_block_size_is_rejected() {
        let device = Device::test_small();
        let cfg = LaunchConfig::grid(4).with_block_size(0);
        let err = device.launch_with("bad", cfg, |_| {}).unwrap_err();
        assert!(matches!(err, DeviceError::InvalidLaunchConfig { .. }));
    }

    #[test]
    fn launches_are_profiled() {
        let device = Device::test_small();
        device.launch("profiled", 16, |_| {}).unwrap();
        device.launch("profiled", 16, |_| {}).unwrap();
        let timing = device.profile().kernel("profiled").unwrap();
        assert_eq!(timing.launches, 2);
        assert_eq!(timing.blocks, 32);
    }

    #[test]
    fn dedicated_pool_limits_observed_parallelism() {
        let device = Device::new(DeviceConfig::test_small().with_worker_threads(1));
        // With one worker the blocks run sequentially; verify a data pattern that
        // would be racy under true concurrency is still correct (single writer).
        let mut order = vec![0usize; 32];
        let order_ptr = std::sync::Mutex::new(&mut order);
        device
            .launch("sequential", 32, |ctx| {
                let mut guard = order_ptr.lock().unwrap();
                guard[ctx.block_idx] = ctx.block_idx + 1;
            })
            .unwrap();
        assert!(order.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn oversized_grids_are_serialised_into_waves() {
        let device = Device::test_small(); // max_resident_blocks = 1024
        device.launch("waved", 4096, |_| {}).unwrap();
        let t = device.profile().kernel("waved").unwrap();
        assert_eq!(t.launches, 1);
        assert_eq!(t.blocks, 4096);
        assert_eq!(t.waves, 4);
    }

    #[test]
    fn wave_execution_preserves_block_order_and_coverage() {
        let device = Device::test_small();
        // 2.5 waves worth of blocks; outputs must still arrive in block order.
        let out = device
            .launch_map("waved.map", 2560, |ctx| ctx.block_idx)
            .unwrap();
        assert_eq!(out.len(), 2560);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
        let t = device.profile().kernel("waved.map").unwrap();
        assert_eq!(t.waves, 3);
    }

    #[test]
    fn resident_grids_run_in_one_wave() {
        let device = Device::test_small();
        device.launch("single", 1024, |_| {}).unwrap();
        assert_eq!(device.profile().kernel("single").unwrap().waves, 1);
    }

    #[test]
    fn v100_like_has_16_gib() {
        let device = Device::v100_like();
        assert_eq!(device.config().memory_capacity, 16 * (1 << 30));
        assert_eq!(device.config().max_resident_blocks, 1 << 15);
    }

    #[test]
    fn timed_section_records_profile() {
        let device = Device::test_small();
        let out = device.timed_section("reduce.sum", || 21 * 2);
        assert_eq!(out, 42);
        assert!(device.profile().kernel("reduce.sum").is_some());
    }

    #[test]
    fn clones_share_memory_pool() {
        let device = Device::test_small();
        let clone = device.clone();
        let _buf = clone.memory().alloc_zeroed::<f64>(128).unwrap();
        assert_eq!(device.memory().usage().used, 1024);
    }

    #[test]
    fn isolated_view_has_its_own_memory_but_shares_the_profile() {
        let device = Device::test_small();
        let view = device.isolated_memory_view();
        let _buf = view.memory().alloc_zeroed::<f64>(128).unwrap();
        assert_eq!(view.memory().usage().used, 1024);
        assert_eq!(
            device.memory().usage().used,
            0,
            "view allocations are not charged to the parent pool"
        );
        assert_eq!(view.memory().capacity(), device.memory().capacity());
        // Kernels launched on the view land in the shared profile.
        view.launch("view.kernel", 8, |_| {}).unwrap();
        assert!(device.profile().kernel("view.kernel").is_some());
    }

    #[test]
    fn isolated_views_share_the_submission_gate() {
        let device = Device::new(DeviceConfig::test_small().with_worker_threads(2));
        assert_eq!(device.submission_gate().capacity(), 2);
        let view = device.isolated_memory_view();
        let _a = device.submission_gate().acquire();
        let _b = view.submission_gate().acquire();
        assert_eq!(device.submission_gate().in_flight(), 2);
        assert_eq!(view.submission_gate().in_flight(), 2);
    }

    #[test]
    fn effective_workers_reflects_the_dedicated_pool() {
        let device = Device::new(DeviceConfig::test_small().with_worker_threads(3));
        assert_eq!(device.effective_workers(), 3);
        let shared = Device::test_small();
        assert!(shared.effective_workers() >= 1);
    }
}
